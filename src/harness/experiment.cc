#include "harness/experiment.hh"

#include <vector>

#include "common/logging.hh"

namespace dp::harness
{

namespace
{

RecorderOptions
recorderOptions(const MeasureOptions &opts)
{
    RecorderOptions ro;
    ro.workerCpus = opts.threads;
    ro.epochLength = opts.epochLength;
    ro.seed = opts.seed;
    ro.enforceSyncOrder = opts.enforceSyncOrder;
    ro.keepCheckpoints = opts.keepCheckpoints;
    return ro;
}

Measurement
measureImpl(const workloads::Workload &w, const MeasureOptions &opts,
            bool with_replay)
{
    dp_assert(opts.totalCpus >= opts.threads,
              "totalCpus must cover the worker CPUs");

    workloads::WorkloadParams params;
    params.threads = opts.threads;
    params.scale = opts.scale;

    Measurement m;
    m.workload = w.name;
    m.opts = opts;

    workloads::WorkloadBundle bundle = w.make(params);

    m.native = runNativeBaseline(bundle.program, bundle.config,
                                 opts.threads, opts.seed);
    if (m.native.reason != StopReason::AllExited) {
        dp_warn(w.name, ": native run stopped with ",
                stopReasonName(m.native.reason));
        return m;
    }

    UniparallelRecorder rec(bundle.program, bundle.config,
                            recorderOptions(opts));
    RecordOutcome out = rec.record();
    m.recordOk = out.ok;
    m.recordExit = out.mainExitCode;
    m.stats = out.recording.stats;
    m.epochs = out.recording.epochs.size();
    if (!out.ok)
        return m;

    std::vector<EpochTiming> timings;
    timings.reserve(out.recording.epochs.size());
    for (const EpochRecord &e : out.recording.epochs) {
        timings.push_back({e.tpCycles, e.epCycles, e.diverged});
        m.scheduleBytes += e.schedule.sizeBytes();
        m.syscallBytes += e.syscalls.sizeBytes();
        m.injectableBytes += e.syscalls.injectableSizeBytes();
        m.signalBytes += e.signals.sizeBytes();
    }
    m.replayLogBytes = out.recording.replayLogBytes();

    PipelineOptions po;
    po.workerCpus = opts.threads;
    po.totalCpus = opts.totalCpus;
    po.maxInFlight = opts.maxInFlight;
    m.pipeline = PipelineModel::run(timings, po);

    m.slowdown = static_cast<double>(m.pipeline.completion) /
                 static_cast<double>(m.native.cycles);
    m.overhead = m.slowdown - 1.0;

    if (with_replay) {
        Replayer rep(out.recording);
        ReplayResult seq = rep.replaySequential();
        m.seqReplayCycles = seq.replayCycles;
        m.replayOk = seq.ok;
        ReplayResult par = rep.replayParallel(opts.threads);
        m.parReplayCycles = par.replayCycles;
        m.replayOk = m.replayOk && par.ok;
    }
    return m;
}

} // namespace

Measurement
measure(const workloads::Workload &w, const MeasureOptions &opts)
{
    return measureImpl(w, opts, false);
}

Measurement
measureWithReplay(const workloads::Workload &w,
                  const MeasureOptions &opts)
{
    return measureImpl(w, opts, true);
}

BaselineMeasurement
measureBaselines(const workloads::Workload &w,
                 const MeasureOptions &opts)
{
    workloads::WorkloadParams params;
    params.threads = opts.threads;
    params.scale = opts.scale;

    BaselineMeasurement bm;
    bm.workload = w.name;

    workloads::WorkloadBundle bundle = w.make(params);
    NativeResult native = runNativeBaseline(
        bundle.program, bundle.config, opts.threads, opts.seed);
    bm.nativeCycles = native.cycles;

    BaselineOptions bo;
    bo.cpus = opts.threads;
    bo.seed = opts.seed;

    CrewRecorder crew(bundle.program, bundle.config, bo);
    BaselineResult cr = crew.record();
    bm.crewOverhead = static_cast<double>(cr.cycles) /
                          static_cast<double>(native.cycles) -
                      1.0;
    bm.crewLogBytes = cr.logBytes;
    bm.crewEvents = cr.events;

    ValueLogRecorder value(bundle.program, bundle.config, bo);
    BaselineResult vr = value.record();
    bm.valueOverhead = static_cast<double>(vr.cycles) /
                           static_cast<double>(native.cycles) -
                       1.0;
    bm.valueLogBytes = vr.logBytes;
    bm.valueEvents = vr.events;
    return bm;
}

} // namespace dp::harness
