file(REMOVE_RECURSE
  "CMakeFiles/dp_testutil.dir/testprogs.cc.o"
  "CMakeFiles/dp_testutil.dir/testprogs.cc.o.d"
  "libdp_testutil.a"
  "libdp_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
