/**
 * @file
 * Unit tests for the copy-on-write paged memory.
 */

#include <gtest/gtest.h>

#include "mem/paged_memory.hh"

namespace dp
{
namespace
{

TEST(PagedMemory, ZeroFilledByDefault)
{
    PagedMemory mem;
    EXPECT_EQ(mem.read64(0), 0u);
    EXPECT_EQ(mem.read8(0xdeadbeef), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(PagedMemory, ScalarRoundTripsAllWidths)
{
    PagedMemory mem;
    mem.write8(1, 0xab);
    mem.write16(100, 0xcdef);
    mem.write32(200, 0x12345678);
    mem.write64(300, 0x1122334455667788ull);
    EXPECT_EQ(mem.read8(1), 0xab);
    EXPECT_EQ(mem.read16(100), 0xcdef);
    EXPECT_EQ(mem.read32(200), 0x12345678u);
    EXPECT_EQ(mem.read64(300), 0x1122334455667788ull);
}

TEST(PagedMemory, LittleEndianLayout)
{
    PagedMemory mem;
    mem.write32(0, 0x04030201);
    EXPECT_EQ(mem.read8(0), 1);
    EXPECT_EQ(mem.read8(1), 2);
    EXPECT_EQ(mem.read8(2), 3);
    EXPECT_EQ(mem.read8(3), 4);
}

TEST(PagedMemory, CrossPageAccessesWork)
{
    PagedMemory mem;
    Addr a = Page::bytes - 3; // 64-bit value straddles two pages
    mem.write64(a, 0x0807060504030201ull);
    EXPECT_EQ(mem.read64(a), 0x0807060504030201ull);
    EXPECT_EQ(mem.read8(Page::bytes - 1), 3);
    EXPECT_EQ(mem.read8(Page::bytes), 4);
    EXPECT_EQ(mem.residentPages(), 2u);
}

TEST(PagedMemory, BulkBytesCrossManyPages)
{
    PagedMemory mem;
    std::vector<std::uint8_t> data(3 * Page::bytes + 17);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    mem.writeBytes(Page::bytes - 100, data);
    std::vector<std::uint8_t> back(data.size());
    mem.readBytes(Page::bytes - 100, back);
    EXPECT_EQ(data, back);
}

TEST(PagedMemory, CStringReadStopsAtNulAndBound)
{
    PagedMemory mem;
    const char *s = "hello";
    mem.writeBytes(10, {reinterpret_cast<const std::uint8_t *>(s), 6});
    EXPECT_EQ(mem.readCString(10), "hello");
    EXPECT_EQ(mem.readCString(10, 3), "hel");
}

TEST(PagedMemory, SnapshotIsolatesSubsequentWrites)
{
    PagedMemory mem;
    mem.write64(0, 111);
    MemSnapshot snap = mem.snapshot();
    mem.write64(0, 222);
    EXPECT_EQ(mem.read64(0), 222u);

    PagedMemory other;
    other.restore(snap);
    EXPECT_EQ(other.read64(0), 111u);
}

TEST(PagedMemory, CowSharesUntouchedPages)
{
    PagedMemory mem;
    for (std::size_t pg = 0; pg < 64; ++pg)
        mem.write64(pg * Page::bytes, pg + 1);
    MemSnapshot snap = mem.snapshot();

    // Touch one page: only that page should be privatized.
    mem.write64(5 * Page::bytes, 999);
    ASSERT_EQ(mem.dirtyPages().size(), 1u);
    EXPECT_EQ(mem.dirtyPages()[0], 5u);

    PagedMemory other;
    other.restore(snap);
    EXPECT_EQ(other.read64(5 * Page::bytes), 6u);
    EXPECT_EQ(mem.read64(5 * Page::bytes), 999u);
}

TEST(PagedMemory, DirtyTrackingResetsOnSnapshot)
{
    PagedMemory mem;
    mem.write64(0, 1);
    mem.write64(Page::bytes, 2);
    EXPECT_EQ(mem.dirtyPages().size(), 2u);
    (void)mem.snapshot();
    EXPECT_TRUE(mem.dirtyPages().empty());
    mem.write64(0, 3);
    EXPECT_EQ(mem.dirtyPages().size(), 1u);
}

TEST(PagedMemory, RepeatedWritesToOnePageCountOnce)
{
    PagedMemory mem;
    for (int i = 0; i < 100; ++i)
        mem.write64(i * 8, i);
    EXPECT_EQ(mem.dirtyPages().size(), 1u);
}

TEST(PagedMemory, HashIgnoresZeroPages)
{
    PagedMemory a, b;
    a.write64(0, 42);
    b.write64(0, 42);
    // b additionally materializes an all-zero page.
    b.write64(17 * Page::bytes, 1);
    b.write64(17 * Page::bytes, 0);
    EXPECT_EQ(a.hash(), b.hash())
        << "explicit zero pages must hash like absent pages";
}

TEST(PagedMemory, HashMatchesSnapshotHash)
{
    PagedMemory mem;
    for (int i = 0; i < 1000; ++i)
        mem.write64(i * 64, i * 3 + 1);
    std::uint64_t live = mem.hash();
    MemSnapshot snap = mem.snapshot();
    EXPECT_EQ(live, snap.hash());
    EXPECT_EQ(live, mem.hash());
}

TEST(PagedMemory, HashDependsOnPagePosition)
{
    PagedMemory a, b;
    a.write64(0, 7);
    b.write64(Page::bytes, 7);
    EXPECT_NE(a.hash(), b.hash());
}

TEST(PagedMemory, DiffPagesFindsExactDifferences)
{
    PagedMemory a;
    for (std::size_t pg = 0; pg < 8; ++pg)
        a.write64(pg * Page::bytes, pg);
    MemSnapshot snap = a.snapshot();
    a.write64(3 * Page::bytes + 8, 1);
    a.write64(6 * Page::bytes + 16, 2);
    std::vector<std::uint32_t> diff = a.diffPages(snap);
    ASSERT_EQ(diff.size(), 2u);
    EXPECT_EQ(diff[0], 3u);
    EXPECT_EQ(diff[1], 6u);
}

TEST(PagedMemory, DiffPagesSeesAbsentVsZeroAsEqual)
{
    PagedMemory a;
    a.write64(0, 5);
    MemSnapshot snap = a.snapshot();
    // Materialize a zero page; content identical to absent.
    a.write64(9 * Page::bytes, 1);
    a.write64(9 * Page::bytes, 0);
    EXPECT_TRUE(a.diffPages(snap).empty());
}

TEST(PagedMemory, SiblingMachinesDoNotInterfere)
{
    PagedMemory a;
    a.write64(0, 10);
    MemSnapshot snap = a.snapshot();
    PagedMemory b, c;
    b.restore(snap);
    c.restore(snap);
    b.write64(0, 20);
    c.write64(0, 30);
    EXPECT_EQ(a.read64(0), 10u);
    EXPECT_EQ(b.read64(0), 20u);
    EXPECT_EQ(c.read64(0), 30u);
}

TEST(PagedMemory, MemoryLimitIsEnforced)
{
    PagedMemory mem(/*max_pages=*/4);
    mem.write64(3 * Page::bytes, 1); // page 3: fine
    EXPECT_DEATH(mem.write64(4 * Page::bytes, 1), "memory limit");
}

TEST(PagedMemory, DirtyTrackingSurvivesRestoreThenTableGrowth)
{
    // Regression guard for the once-duplicated growth path in
    // writablePage: after restore() shrinks the bookkeeping to the
    // snapshot's table size, a write far beyond it must grow every
    // parallel structure consistently and still be tracked as dirty.
    PagedMemory mem;
    mem.write64(0, 1);
    MemSnapshot snap = mem.snapshot();
    mem.write64(40 * Page::bytes, 2); // grow well past the snapshot
    mem.restore(snap);                // table back to 1 entry
    EXPECT_TRUE(mem.dirtyPages().empty());

    mem.write64(100 * Page::bytes, 3); // regrow, different size
    ASSERT_EQ(mem.dirtyPages().size(), 1u);
    EXPECT_EQ(mem.dirtyPages()[0], 100u);
    EXPECT_EQ(mem.read64(100 * Page::bytes), 3u);
    EXPECT_EQ(mem.read64(40 * Page::bytes), 0u);
    EXPECT_EQ(mem.hash(), mem.referenceHash());
}

TEST(PagedMemory, IncrementalHashMatchesReferenceRecompute)
{
    PagedMemory mem;
    EXPECT_EQ(mem.hash(), 0u) << "empty memory digests to 0";
    EXPECT_EQ(mem.referenceHash(), 0u);

    for (int i = 0; i < 200; ++i)
        mem.write64((i % 32) * Page::bytes + i * 8 % Page::bytes,
                    i * 0x9e37u + 1);
    EXPECT_EQ(mem.hash(), mem.referenceHash());

    // Overwrite after a digest query: the memoized old term must be
    // retired correctly.
    mem.write64(3 * Page::bytes, 0xfeedu);
    EXPECT_EQ(mem.hash(), mem.referenceHash());
}

TEST(PagedMemory, HashIsStableAcrossSnapshotRestore)
{
    PagedMemory mem;
    for (std::size_t pg = 0; pg < 16; ++pg)
        mem.write64(pg * Page::bytes, pg + 100);
    const std::uint64_t before = mem.hash();

    MemSnapshot snap = mem.snapshot();
    EXPECT_EQ(snap.hash(), before);

    mem.write64(7 * Page::bytes, 0); // zero a page: digest changes
    EXPECT_NE(mem.hash(), before);
    EXPECT_EQ(mem.hash(), mem.referenceHash());

    mem.restore(snap);
    EXPECT_EQ(mem.hash(), before) << "restore adopts the snapshot digest";
    EXPECT_EQ(mem.referenceHash(), before);
}

TEST(PagedMemory, ClearDirtyDoesNotDesyncDigest)
{
    PagedMemory mem;
    mem.write64(0, 1);
    mem.clearDirty(); // drops dirty tracking, not digest staleness
    mem.write64(Page::bytes, 2);
    EXPECT_EQ(mem.hash(), mem.referenceHash());
    EXPECT_EQ(mem.dirtyPages().size(), 1u);
}

TEST(PagedMemory, SharedPageWriteAfterDigestQueryStaysCoherent)
{
    // A page can become shared *between* a digest query and the next
    // write (Machine copies share pages CoW); the write must clone it
    // and both digests must stay exact.
    PagedMemory a;
    a.write64(0, 11);
    (void)a.hash();
    MemSnapshot snap = a.snapshot();
    PagedMemory b;
    b.restore(snap);

    a.write64(0, 22);
    EXPECT_EQ(b.read64(0), 11u);
    EXPECT_EQ(a.hash(), a.referenceHash());
    EXPECT_EQ(b.hash(), b.referenceHash());
    EXPECT_EQ(b.hash(), snap.hash());
    EXPECT_NE(a.hash(), b.hash());
}

} // namespace
} // namespace dp
