/**
 * @file
 * Byte-stream writer/reader with LEB128 varint support.
 *
 * All uniplay logs are encoded with these primitives so that log sizes
 * reported by the benchmarks reflect a realistic compact encoding rather
 * than in-memory struct sizes.
 */

#ifndef DP_COMMON_BYTES_HH
#define DP_COMMON_BYTES_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace dp
{

/** Append-only byte buffer with varint encoders. */
class ByteWriter
{
  public:
    /** Append one raw byte. */
    void u8(std::uint8_t v) { buf_.push_back(v); }

    /** Append a fixed-width little-endian 64-bit value. */
    void
    u64fixed(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** Append an unsigned LEB128 varint. */
    void
    varu(std::uint64_t v)
    {
        while (v >= 0x80) {
            buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
            v >>= 7;
        }
        buf_.push_back(static_cast<std::uint8_t>(v));
    }

    /** Append a zigzag-encoded signed varint. */
    void
    vari(std::int64_t v)
    {
        varu((static_cast<std::uint64_t>(v) << 1) ^
             static_cast<std::uint64_t>(v >> 63));
    }

    /** Append a length-prefixed byte string. */
    void
    blob(std::span<const std::uint8_t> b)
    {
        varu(b.size());
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    /** Append a length-prefixed UTF-8 string. */
    void
    str(const std::string &s)
    {
        varu(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    std::size_t size() const { return buf_.size(); }
    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Thrown by ByteReader on a malformed stream. Callers that treat
 * malformed input as a bug let it propagate (terminating, as the old
 * panic did); loaders that must fail closed catch it and surface a
 * structured error.
 */
struct ByteStreamError
{
    enum class Kind : std::uint8_t
    {
        Underrun,      ///< read past the end of the buffer
        OverlongVarint ///< varint continued past 64 bits
    };

    Kind kind = Kind::Underrun;
    /** Stream position at which the error was detected. */
    std::size_t offset = 0;
};

/** Sequential reader over an encoded byte buffer; throws
 *  ByteStreamError on underrun or malformed varints. */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    /** Read one raw byte. */
    std::uint8_t
    u8()
    {
        if (pos_ >= data_.size())
            throw ByteStreamError{ByteStreamError::Kind::Underrun,
                                  pos_};
        return data_[pos_++];
    }

    /** Read a fixed-width little-endian 64-bit value. */
    std::uint64_t
    u64fixed()
    {
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(u8()) << (8 * i);
        return v;
    }

    /** Read an unsigned LEB128 varint. */
    std::uint64_t
    varu()
    {
        std::uint64_t v = 0;
        int shift = 0;
        for (;;) {
            std::uint8_t b = u8();
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
            if (shift >= 64)
                throw ByteStreamError{
                    ByteStreamError::Kind::OverlongVarint, pos_};
        }
    }

    /** Read a zigzag-encoded signed varint. */
    std::int64_t
    vari()
    {
        std::uint64_t z = varu();
        return static_cast<std::int64_t>((z >> 1) ^ (0 - (z & 1)));
    }

    /** Read a length-prefixed byte string. */
    std::vector<std::uint8_t>
    blob()
    {
        std::uint64_t n = varu();
        // n > remaining() also catches n overflowing pos_ + n.
        if (n > remaining())
            throw ByteStreamError{ByteStreamError::Kind::Underrun,
                                  pos_};
        std::vector<std::uint8_t> out(data_.begin() + pos_,
                                      data_.begin() + pos_ + n);
        pos_ += n;
        return out;
    }

    /** Read a length-prefixed UTF-8 string. */
    std::string
    str()
    {
        std::uint64_t n = varu();
        if (n > remaining())
            throw ByteStreamError{ByteStreamError::Kind::Underrun,
                                  pos_};
        std::string out(data_.begin() + pos_, data_.begin() + pos_ + n);
        pos_ += n;
        return out;
    }

    bool atEnd() const { return pos_ == data_.size(); }
    std::size_t pos() const { return pos_; }
    /** Bytes left in the buffer. */
    std::size_t remaining() const { return data_.size() - pos_; }

  private:
    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
};

} // namespace dp

#endif // DP_COMMON_BYTES_HH
