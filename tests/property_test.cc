/**
 * @file
 * Property tests over randomly generated guest programs.
 *
 * A generator emits structurally valid, terminating multithreaded
 * programs mixing private compute, atomics, lock-protected shared
 * updates, barriers, syscalls (including injectables), and —
 * optionally — genuine data races. Every generated program must
 * satisfy DESIGN.md's invariants: data-race-free programs record with
 * zero rollbacks; racy programs record with recovery; every recording
 * replays exactly, sequentially and in parallel.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/recorder.hh"
#include "fault/fault.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

struct PipelineCheck
{
    bool recordOk = false;
    std::uint32_t rollbacks = 0;
    bool seqOk = false;
    bool parOk = false;
};

PipelineCheck
checkFullPipeline(const GuestProgram &prog, std::uint64_t seed)
{
    MachineConfig cfg;
    cfg.netBytesPerConn = 8'192;
    cfg.netCyclesPerByte = 2;

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 4'000;
    opts.seed = seed;
    UniparallelRecorder rec(prog, cfg, opts);
    RecordOutcome out = rec.record();

    PipelineCheck res;
    res.recordOk = out.ok;
    res.rollbacks = out.recording.stats.rollbacks;
    if (!out.ok)
        return res;
    Replayer rep(out.recording);
    res.seqOk = rep.replaySequential().ok;
    res.parOk = rep.replayParallel(2).ok;
    return res;
}

class RandomDrfPrograms
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomDrfPrograms, RecordZeroRollbacksAndReplay)
{
    GuestProgram prog =
        testprogs::randomProgram(GetParam(), {.allowRaces = false});
    PipelineCheck c = checkFullPipeline(prog, GetParam() * 31 + 7);
    ASSERT_TRUE(c.recordOk) << "seed " << GetParam();
    EXPECT_EQ(c.rollbacks, 0u)
        << "DRF program diverged (seed " << GetParam() << ")";
    EXPECT_TRUE(c.seqOk);
    EXPECT_TRUE(c.parOk);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDrfPrograms,
                         ::testing::Range<std::uint64_t>(1, 25));

class RandomRacyPrograms
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomRacyPrograms, RecordRecoversAndReplays)
{
    GuestProgram prog =
        testprogs::randomProgram(GetParam(), {.allowRaces = true});
    PipelineCheck c = checkFullPipeline(prog, GetParam() * 17 + 3);
    ASSERT_TRUE(c.recordOk)
        << "racy program failed to record (seed " << GetParam()
        << ")";
    EXPECT_TRUE(c.seqOk) << "seed " << GetParam();
    EXPECT_TRUE(c.parOk) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRacyPrograms,
                         ::testing::Range<std::uint64_t>(100, 116));

/**
 * Draw a random fault plan: a few sites at moderate probabilities.
 * FileShortRead is excluded (random programs never use Sys::Read);
 * TornCheckpoint keeps a per-capture budget so recapture always
 * converges within the retry cap.
 */
FaultPlan
randomFaultPlan(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 5);
    FaultPlan plan;
    plan.seed = seed ^ 0xfa017;
    if (rng.chance(2, 3))
        plan.with(FaultSite::NetRecvFail, 0.01 * rng.range(1, 10));
    if (rng.chance(2, 3))
        plan.with(FaultSite::NetRecvShort, 0.01 * rng.range(1, 20));
    if (rng.chance(2, 3))
        plan.with(FaultSite::GetTimeFail, 0.01 * rng.range(1, 30));
    if (rng.chance(1, 2))
        plan.with(FaultSite::TornCheckpoint,
                  0.1 * rng.range(1, 5),
                  static_cast<std::uint32_t>(rng.range(1, 3)));
    if (rng.chance(1, 2))
        plan.with(FaultSite::WorkerDeath, 0.1 * rng.range(1, 6));
    if (!plan.enabled()) // always inject *something*
        plan.with(FaultSite::GetTimeFail, 0.2);
    return plan;
}

class RandomProgramsUnderFaults
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomProgramsUnderFaults, SurvivingRecordingsReplayExactly)
{
    const std::uint64_t seed = GetParam();
    GuestProgram prog =
        testprogs::randomProgram(seed, {.allowRaces = false});
    FaultInjector inj(randomFaultPlan(seed));

    MachineConfig cfg;
    cfg.netBytesPerConn = 8'192;
    cfg.netCyclesPerByte = 2;
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 4'000;
    opts.seed = seed * 31 + 7;
    opts.faults = &inj;

    std::uint32_t recoveries[4] = {};
    RecordObserver obs;
    obs.onRecovery = [&](RecoveryKind kind, EpochId) {
        ++recoveries[static_cast<std::uint8_t>(kind)];
    };

    UniparallelRecorder rec(prog, cfg, opts);
    RecordOutcome out = rec.record(&obs);

    // Fault injection may only fail a session *closed*.
    if (!out.ok) {
        EXPECT_EQ(out.tpReason, StopReason::Stalled)
            << "seed " << seed;
        return;
    }

    // The degradation counters mirror both the injector's decision
    // stream and the observer's recovery event stream.
    const RecorderStats &st = out.recording.stats;
    EXPECT_EQ(st.tornCheckpoints,
              inj.count(FaultSite::TornCheckpoint))
        << "seed " << seed;
    EXPECT_EQ(st.workerDeaths, inj.count(FaultSite::WorkerDeath))
        << "seed " << seed;
    EXPECT_EQ(st.epochRetries + st.seqFallbacks, st.workerDeaths);
    auto seen = [&](RecoveryKind k) {
        return recoveries[static_cast<std::uint8_t>(k)];
    };
    EXPECT_EQ(seen(RecoveryKind::Rollback), st.rollbacks);
    EXPECT_EQ(seen(RecoveryKind::CheckpointRecapture),
              st.tornCheckpoints);
    EXPECT_EQ(seen(RecoveryKind::EpochRetry), st.epochRetries);
    EXPECT_EQ(seen(RecoveryKind::SequentialFallback),
              st.seqFallbacks);

    // Any recording that survives recording + loading replays
    // exactly, sequentially and in parallel.
    std::vector<std::uint8_t> bytes =
        serializeRecording(out.recording);
    RecordingLoadResult loaded = loadRecording(bytes);
    ASSERT_TRUE(loaded.ok())
        << "seed " << seed << ": " << loadErrorName(loaded.error);
    ReplayResult mem = Replayer(out.recording).replaySequential();
    ReplayResult disk =
        Replayer(*loaded.recording).replaySequential();
    ASSERT_TRUE(mem.ok) << "seed " << seed;
    ASSERT_TRUE(disk.ok) << "seed " << seed;
    EXPECT_EQ(mem.stdoutBytes, disk.stdoutBytes) << "seed " << seed;
    EXPECT_TRUE(Replayer(out.recording).replayParallel(2).ok)
        << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProgramsUnderFaults,
                         ::testing::Range<std::uint64_t>(300, 316));

/**
 * The incremental digest must equal the from-scratch recompute after
 * any interleaving of writes, snapshots, restores, dirty-tracking
 * resets and diffs. referenceHash() is an independent computation
 * path (it rehashes every resident page's bytes, bypassing both the
 * memo and the running XOR), so equality here is a real oracle.
 */
class IncrementalDigestProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(IncrementalDigestProperty, MatchesReferenceUnderRandomOps)
{
    Rng rng(GetParam() * 0x2545f4914f6cdd1dull + 11);
    PagedMemory mem;
    std::vector<MemSnapshot> snaps;
    constexpr std::uint64_t kPageSpan = 96; // keep footprints modest

    auto random_addr = [&] {
        return rng.below(kPageSpan) * Page::bytes +
               rng.below(Page::bytes);
    };

    for (int op = 0; op < 400; ++op) {
        switch (rng.below(10)) {
        case 0: case 1: case 2: case 3: // scalar writes dominate
            mem.write64(random_addr(), rng.next());
            break;
        case 4:
            mem.write8(random_addr(),
                       static_cast<std::uint8_t>(rng.next()));
            break;
        case 5: { // bulk write, possibly page-crossing
            std::vector<std::uint8_t> buf(rng.range(1, 3 * Page::bytes));
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            mem.writeBytes(random_addr(), buf);
            break;
        }
        case 6: // zero a whole page: must digest like absent
            for (std::size_t i = 0; i < Page::bytes; i += 8)
                mem.write64(rng.below(kPageSpan) * Page::bytes + i, 0);
            break;
        case 7:
            snaps.push_back(mem.snapshot());
            EXPECT_EQ(snaps.back().hash(), mem.referenceHash())
                << "seed " << GetParam() << " op " << op;
            break;
        case 8:
            if (!snaps.empty()) {
                const MemSnapshot &s =
                    snaps[rng.below(snaps.size())];
                EXPECT_GE(mem.diffPages(s).size(), 0u);
                mem.restore(s);
                EXPECT_TRUE(mem.dirtyPages().empty());
                EXPECT_EQ(mem.hash(), s.hash())
                    << "seed " << GetParam() << " op " << op;
            }
            break;
        case 9:
            mem.clearDirty();
            break;
        }
        if (op % 7 == 0) // query mid-stream: memo + fold paths
            (void)mem.hash();
        EXPECT_EQ(mem.hash(), mem.referenceHash())
            << "seed " << GetParam() << " op " << op;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalDigestProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(IncrementalDigestProperty, TornCaptureRetryLoopStaysCoherent)
{
    // The recorder's torn-capture recovery path: captureTorn yields a
    // checkpoint whose digest disagrees with the machine; detection
    // (consistentWith) and recapture must leave the incremental digest
    // exact, and the recaptured checkpoint must restore byte- and
    // digest-identically.
    GuestProgram prog =
        testprogs::randomProgram(42, {.allowRaces = false});
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    EXPECT_NE(r.run(), StopReason::Deadlock);

    for (std::uint64_t salt = 1; salt <= 4; ++salt) {
        Checkpoint torn = Checkpoint::captureTorn(m, salt);
        EXPECT_FALSE(torn.consistentWith(m)) << "salt " << salt;
        EXPECT_EQ(m.mem.hash(), m.mem.referenceHash());
        Checkpoint good = Checkpoint::capture(m);
        ASSERT_TRUE(good.consistentWith(m)) << "salt " << salt;

        Machine other = good.materialize(prog, {});
        EXPECT_EQ(other.stateHash(), good.stateHash());
        EXPECT_EQ(other.mem.hash(), other.mem.referenceHash());
    }
}

TEST(RandomPrograms, UniprocessorExecutionIsDeterministic)
{
    for (std::uint64_t seed = 200; seed < 208; ++seed) {
        GuestProgram prog =
            testprogs::randomProgram(seed, {.allowRaces = true});
        auto run_hash = [&] {
            Machine m(prog, {});
            SimOS os;
            UniRunner r(m, os, {}, {});
            EXPECT_NE(r.run(), StopReason::Deadlock);
            return m.stateHash();
        };
        EXPECT_EQ(run_hash(), run_hash()) << "seed " << seed;
    }
}

} // namespace
} // namespace dp
