/**
 * @file
 * E10 — Figure: overhead vs worker thread count.
 *
 * The epoch-parallel re-execution serializes each epoch, so its work
 * is ~N x an epoch's wall time; with N spare cores the pipeline keeps
 * up but the per-epoch tail and serialization inefficiencies grow
 * with N. Overhead should rise monotonically with the thread count.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

int
main()
{
    banner("E10 (Fig: scalability)",
           "overhead vs worker threads (spare cores = N)",
           "[recon] 15% @ 2T -> 28% @ 4T implies a rising curve; "
           "shape: monotone growth, steepest for sync-heavy loads");

    Table t({"benchmark", "1T", "2T", "4T", "8T"});

    for (const char *name :
         {"pbzip2", "pfscan", "mysql", "fft", "ocean", "water"}) {
        const workloads::Workload *w = workloads::findWorkload(name);
        std::vector<std::string> row{name};
        for (std::uint32_t n : {1u, 2u, 4u, 8u}) {
            harness::MeasureOptions o = defaultOptions(n);
            o.scale = 16;
            harness::Measurement m = harness::measure(*w, o);
            row.push_back(m.recordOk ? Table::pct(m.overhead)
                                     : "FAIL");
        }
        t.addRow(row);
    }
    t.print(std::cout);
    return 0;
}
