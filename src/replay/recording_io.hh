/**
 * @file
 * Recording serialization: turn a Recording into a self-contained
 * byte artifact and back.
 *
 * The artifact embeds the guest program (code + data segments), the
 * machine configuration, and every epoch's logs and digests — enough
 * for sequential replay in a different process with no other inputs.
 * Checkpoints are deliberately not serialized (they are an in-memory
 * acceleration for parallel replay; a consumer can regenerate them by
 * replaying once and capturing boundaries).
 *
 * Loading is fail-closed: loadRecording() classifies every way an
 * artifact can be malformed — truncated tails, flipped bytes, absurd
 * section lengths, out-of-range enums — into a structured LoadError
 * and never crashes, allocates unboundedly, or silently accepts a
 * corrupt stream. deserializeRecording() is the panicking wrapper for
 * callers that treat corruption as an unrecoverable bug.
 */

#ifndef DP_REPLAY_RECORDING_IO_HH
#define DP_REPLAY_RECORDING_IO_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "core/recording.hh"

namespace dp
{

/** A deserialized artifact (the Recording owns its program copy). */
struct LoadedRecording
{
    std::unique_ptr<Recording> recording;

    const GuestProgram &program() const
    {
        return recording->program();
    }
};

/** Why an artifact failed to load. */
enum class LoadError : std::uint8_t
{
    None,             ///< loaded and structurally valid
    BadMagic,         ///< not a uniplay recording artifact
    BadVersion,       ///< produced by an incompatible format version
    Truncated,        ///< the stream ended inside a section
    BadVarint,        ///< a varint ran past 64 bits
    BadSectionLength, ///< a section claims more bytes than exist
    BadValue,         ///< an enum/opcode outside its valid range
    TrailingBytes,    ///< well-formed artifact followed by junk
};

/** Stable human-readable name of @p e (e.g. "truncated"). */
const char *loadErrorName(LoadError e);

/** Result of a fail-closed load attempt. */
struct RecordingLoadResult
{
    /** Non-null exactly when error == LoadError::None. */
    std::unique_ptr<Recording> recording;
    LoadError error = LoadError::None;
    /** Diagnostic: what was malformed and where. */
    std::string detail;
    /** Byte offset at which the malformation was detected. */
    std::size_t errorOffset = 0;

    bool ok() const { return error == LoadError::None; }
};

/**
 * One serialized section: its name, the byte offset where it starts,
 * and whether a varint length prefix sits at that offset (the
 * corruption tests target those).
 */
struct SectionMark
{
    std::string name;
    std::size_t offset = 0;
    bool lengthPrefixed = false;
};

/**
 * Thrown by the shared decode helpers on malformed input that is
 * structurally readable but semantically invalid (bad enum values,
 * absurd section lengths). loadRecording() and the journal's
 * recoverJournal() both catch it and surface a structured error;
 * it never escapes a fail-closed loader.
 */
struct RecordingDecodeError
{
    LoadError error = LoadError::None;
    std::string detail;
    std::size_t offset = 0;
};

/** Encode the guest program (code + data segments) with the exact
 *  byte layout the monolithic artifact uses. */
void writeGuestProgram(ByteWriter &w, const GuestProgram &prog);
/** Decode a program written by writeGuestProgram. Throws
 *  RecordingDecodeError / ByteStreamError on malformed input. */
GuestProgram readGuestProgram(ByteReader &r);

/** Encode the machine configuration with the artifact's layout. */
void writeMachineConfig(ByteWriter &w, const MachineConfig &cfg);
/** Decode a configuration written by writeMachineConfig. Throws
 *  RecordingDecodeError / ByteStreamError on malformed input. */
MachineConfig readMachineConfig(ByteReader &r);

/**
 * Encode one epoch's record body — logs, digests, timing metadata,
 * targets — with the exact byte layout the monolithic artifact uses.
 * The epoch journal appends the same body per frame, which is what
 * makes journal→artifact conversion byte-identical. @p mark (optional)
 * is invoked with (field name, length-prefixed?) at each field start.
 */
void writeEpochRecord(
    ByteWriter &w, const EpochRecord &e,
    const std::function<void(const char *, bool)> &mark = {});

/**
 * Decode one epoch record body written by writeEpochRecord.
 * @p index labels diagnostics. Throws RecordingDecodeError on invalid
 * values and ByteStreamError on truncation — fail-closed callers
 * catch both.
 */
EpochRecord readEpochRecord(ByteReader &r, std::uint64_t index);

/**
 * Serialize @p rec (without checkpoints) into a byte artifact. When
 * @p marks is non-null it receives the offset of every section, for
 * corruption tests that cut or rewrite the stream at structural
 * boundaries.
 */
std::vector<std::uint8_t>
serializeRecording(const Recording &rec,
                   std::vector<SectionMark> *marks = nullptr);

/**
 * Parse an artifact produced by serializeRecording, failing closed:
 * any malformation yields a structured error, never a crash or a
 * silently-wrong Recording.
 */
RecordingLoadResult loadRecording(std::span<const std::uint8_t> bytes);

/**
 * Parse an artifact produced by serializeRecording. Panics on a
 * corrupt or version-mismatched artifact; see loadRecording for the
 * fail-closed API.
 */
LoadedRecording deserializeRecording(
    std::span<const std::uint8_t> bytes);

} // namespace dp

#endif // DP_REPLAY_RECORDING_IO_HH
