file(REMOVE_RECURSE
  "libdp_log.a"
)
