#include "vm/asmlib.hh"

#include "common/logging.hh"

namespace dp::asmlib
{

using enum Reg;

void
lockAcquire(Assembler &a, Reg lock_addr, Reg scratch)
{
    dp_assert(lock_addr != r0 && lock_addr != r1 && lock_addr != r2,
              "lock_addr register clobbered by the helper itself");
    Label retry = a.newLabel();
    Label acquired = a.newLabel();
    a.bind(retry);
    a.li(scratch, 0);           // expected: free
    a.li(r2, 1);                // desired: locked
    a.cas(scratch, lock_addr, r2);
    a.beqz(scratch, acquired);  // old value was 0: we own it
    a.mov(r1, lock_addr);       // park while the word reads locked
    a.li(r2, 1);
    a.sys(Sys::FutexWait);
    a.jmp(retry);
    a.bind(acquired);
}

void
lockRelease(Assembler &a, Reg lock_addr, Reg scratch)
{
    dp_assert(lock_addr != r0 && lock_addr != r1 && lock_addr != r2,
              "lock_addr register clobbered by the helper itself");
    a.li(scratch, 0);
    a.xchg(scratch, lock_addr, scratch); // atomic release store
    a.mov(r1, lock_addr);
    a.li(r2, 1);                         // wake one waiter
    a.sys(Sys::FutexWake);
}

void
barrierWait(Assembler &a, Reg bar_addr, Reg nthreads, Reg s1, Reg s2)
{
    dp_assert(bar_addr != r0 && bar_addr != r1 && bar_addr != r2,
              "bar_addr register clobbered by the helper itself");
    dp_assert(nthreads != r0 && nthreads != r1 && nthreads != r2,
              "nthreads register clobbered by the helper itself");
    Label wait_path = a.newLabel();
    Label recheck = a.newLabel();
    Label done = a.newLabel();

    a.ld64(s1, bar_addr, 8);    // s1 = my generation
    a.li(s2, 1);
    a.fetchAdd(s2, bar_addr, s2); // s2 = old arrival count
    a.addi(s2, s2, 1);
    a.bne(s2, nthreads, wait_path);

    // Last arriver: reset the count, advance the generation, wake all.
    a.li(s2, 0);
    a.xchg(s2, bar_addr, s2);
    a.addi(r1, bar_addr, 8);
    a.li(s2, 1);
    a.fetchAdd(s2, r1, s2);
    a.li(r2, std::int64_t{1} << 32); // wake "all"
    a.sys(Sys::FutexWake);
    a.jmp(done);

    a.bind(wait_path);
    a.addi(r1, bar_addr, 8);
    a.mov(r2, s1);              // wait while generation unchanged
    a.sys(Sys::FutexWait);
    a.bind(recheck);
    a.ld64(s2, bar_addr, 8);
    a.beq(s2, s1, wait_path);   // spurious wake: generation unchanged
    a.bind(done);
}

void
exitWith(Assembler &a, std::uint64_t code)
{
    a.li(r1, static_cast<std::int64_t>(code));
    a.sys(Sys::Exit);
}

void
spawnThread(Assembler &a, Label entry, Reg arg_reg)
{
    // ABI: spawn(entry_pc, arg) takes r1 = entry, r2 = arg. Copy the
    // argument first so loading the entry pc cannot clobber it.
    if (arg_reg != r2)
        a.mov(r2, arg_reg);
    a.liLabel(r1, entry);
    a.sys(Sys::Spawn);
}

void
joinThread(Assembler &a, Reg tid_reg)
{
    if (tid_reg != r1)
        a.mov(r1, tid_reg);
    a.sys(Sys::Join);
}

void
writeFd(Assembler &a, std::int64_t fd, Reg buf_reg, Reg len_reg)
{
    dp_assert(buf_reg != r1 && buf_reg != r3,
              "buf_reg conflicts with syscall registers");
    dp_assert(len_reg != r1 && len_reg != r2,
              "len_reg conflicts with syscall registers");
    a.li(r1, fd);
    a.mov(r2, buf_reg);
    a.mov(r3, len_reg);
    a.sys(Sys::Write);
}

} // namespace dp::asmlib
