/**
 * @file
 * ShipSender: the primary-side half of journal shipping.
 *
 * The sender replicates journal stream images byte-for-byte: it
 * tracks a per-stream sent offset, and pump() ships every byte the
 * source holds beyond it as CRC-framed batches across the ShipLink,
 * round-robin across streams so no stream starves. Wire it into a
 * record session by calling pump() from
 * RecordObserver::onEpochCommitted after the journal writer's
 * append — the source callback reads the writer's committed stream
 * bytes (flushing its committer strands), so only durable bytes ever
 * ship. The same sender ships a loaded journal file set offline.
 *
 * Reliability loop per batch: transmit, await the ack, and on a
 * timeout retry the same batch under a capped exponential backoff
 * with seeded jitter — measured in deterministic virtual ticks, not
 * wall-clock, so tests are fast and a session's retry schedule
 * replays from its seed. A nack's watermarks rewind the sent offsets
 * (resync after a gap or standby crash); a batch that makes no
 * progress burns an attempt, so maxAttempts bounds every failure
 * loop. When the budget is exhausted the sender fails the link and
 * stops: the standby is stale but consistent. Back-pressure is
 * inherent: transmit() blocks inside the standby's bounded-lag ack
 * hold, which stalls pump() and with it the primary's commit path.
 */

#ifndef DP_SHIP_SENDER_HH
#define DP_SHIP_SENDER_HH

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ship/link.hh"
#include "ship/ship.hh"

namespace dp
{

/** Shape of a sender. */
struct ShipSenderOptions
{
    /** Max payload bytes per batch. */
    std::size_t batchBytes = 64 * 1024;
    /** Attempts per batch before the link is declared dead. */
    unsigned maxAttempts = 8;
    /** Backoff: min(cap, base << attempt) + jitter in [0, base]. */
    std::uint64_t backoffBaseTicks = 4;
    std::uint64_t backoffCapTicks = 512;
    /** Seed of the deterministic retry jitter. */
    std::uint64_t seed = 1;
};

/** See file comment. */
class ShipSender
{
  public:
    /** Reads stream @p s's committed image; called per pump step, so
     *  a live journal writer's growth is picked up continuously. */
    using Source =
        std::function<std::span<const std::uint8_t>(unsigned)>;

    ShipSender(ShipLink &link, unsigned streams, Source source,
               ShipSenderOptions opts = {});

    /**
     * Ship until every stream's sent offset reaches its source size,
     * the link dies, or the standby fails closed. Returns true when
     * fully caught up.
     */
    bool pump();

    /** Advance the primary-side committed-epoch watermark gauge. */
    void
    noteEpochCommitted(std::uint64_t n = 1)
    {
        stats_.epochsCommitted += n;
    }

    /** The session is over: retry budget exhausted or standby
     *  failed closed. */
    bool
    failed() const
    {
        return stats_.linkFailed || stats_.standbyFailed;
    }

    const ShipSenderStats &stats() const { return stats_; }
    const std::vector<std::uint64_t> &
    sentOffsets() const
    {
        return sent_;
    }

  private:
    /** Ship one batch of stream @p s with the retry loop; false only
     *  when the session failed. */
    bool shipOne(unsigned s);
    void backoff(std::uint64_t seq, unsigned attempt);
    /** Adopt an ack's watermarks; true if any offset rewound. */
    bool adopt(const ShipAck &ack);

    ShipLink &link_;
    unsigned streams_;
    Source source_;
    ShipSenderOptions opts_;
    std::vector<std::uint64_t> sent_;
    std::uint64_t nextSeq_ = 0;
    unsigned rr_ = 0; ///< round-robin cursor
    ShipSenderStats stats_;
};

} // namespace dp

#endif // DP_SHIP_SENDER_HH
