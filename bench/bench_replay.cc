/**
 * @file
 * E6 — Figure: replay time, sequential vs epoch-parallel.
 *
 * Sequential replay of a uniparallel recording is a single-CPU
 * re-execution (~N x native). Replaying epochs in parallel from the
 * retained checkpoints recovers the lost parallelism — the second
 * dividend of uniparallelism the paper highlights.
 */

#include "bench_common.hh"

using namespace dp;
using namespace dp::bench;

int
main()
{
    banner("E6 (Fig: replay time)",
           "replay time normalized to native, 2 worker threads",
           "[recon] shape: sequential ~Nx native; parallel replay "
           "approaches native");

    Table t({"benchmark", "native Mcyc", "seq replay", "par replay",
             "par speedup", "verified"});

    RunningStat seq_s, par_s;
    for (const auto &w : workloads::allWorkloads()) {
        harness::MeasureOptions o = defaultOptions(2);
        o.scale = 16; // replay triples the execution count
        harness::Measurement m = harness::measureWithReplay(w, o);
        if (!m.recordOk) {
            std::cerr << "record failed for " << w.name << "\n";
            return 1;
        }
        double native = static_cast<double>(m.native.cycles);
        double seq = static_cast<double>(m.seqReplayCycles) / native;
        double par = static_cast<double>(m.parReplayCycles) / native;
        seq_s.add(seq);
        par_s.add(par);
        t.addRow({w.name, Table::num(native / 1e6, 2),
                  Table::num(seq, 2) + "x", Table::num(par, 2) + "x",
                  Table::num(seq / par, 2) + "x",
                  m.replayOk ? "yes" : "NO"});
    }
    t.addRow({"geomean", "", Table::num(seq_s.geomean(), 2) + "x",
              Table::num(par_s.geomean(), 2) + "x",
              Table::num(seq_s.geomean() / par_s.geomean(), 2) + "x",
              ""});
    t.print(std::cout);
    return 0;
}
