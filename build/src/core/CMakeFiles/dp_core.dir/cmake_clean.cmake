file(REMOVE_RECURSE
  "CMakeFiles/dp_core.dir/divergence.cc.o"
  "CMakeFiles/dp_core.dir/divergence.cc.o.d"
  "CMakeFiles/dp_core.dir/epoch_runner.cc.o"
  "CMakeFiles/dp_core.dir/epoch_runner.cc.o.d"
  "CMakeFiles/dp_core.dir/recorder.cc.o"
  "CMakeFiles/dp_core.dir/recorder.cc.o.d"
  "CMakeFiles/dp_core.dir/recording.cc.o"
  "CMakeFiles/dp_core.dir/recording.cc.o.d"
  "libdp_core.a"
  "libdp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
