#include "ship/link.hh"

#include "common/hash.hh"
#include "ship/standby.hh"

namespace dp
{

bool
ShipLink::fire(FaultSite site, std::uint64_t scope)
{
    return faults_ && faults_->fire(site, scope);
}

std::optional<ShipAck>
ShipLink::transmit(std::span<const std::uint8_t> wire,
                   std::uint64_t scope)
{
    ++stats_.transmitted;
    if (down_)
        return std::nullopt;
    if (fire(FaultSite::LinkDisconnect, scope)) {
        down_ = true;
        held_.reset(); // in-flight batches die with the link
        ++stats_.disconnects;
        return std::nullopt;
    }
    if (fire(FaultSite::LinkDrop, scope)) {
        ++stats_.dropped;
        return std::nullopt;
    }
    if (!held_ && fire(FaultSite::LinkReorder, scope)) {
        held_.emplace(wire.begin(), wire.end());
        ++stats_.reordered;
        return std::nullopt;
    }

    std::vector<std::uint8_t> damaged;
    std::span<const std::uint8_t> deliver = wire;
    if (fire(FaultSite::LinkTornBatch, scope) && wire.size() > 1) {
        // Deterministic mid-batch cut, like the journal's torn-frame
        // shape: at least 1 byte arrives, at least 1 is lost.
        std::size_t cut =
            1 + static_cast<std::size_t>(
                    mix64(0x9d5c8f2ab17e43d1ull ^
                          scope * 0x9e3779b97f4a7c15ull) %
                    (wire.size() - 1));
        damaged.assign(wire.begin(), wire.begin() + cut);
        deliver = damaged;
        ++stats_.torn;
    }
    bool dup = fire(FaultSite::LinkDuplicate, scope);

    ShipAck ack = standby_.receive(deliver);
    ++stats_.delivered;
    if (dup) {
        ack = standby_.receive(deliver);
        ++stats_.delivered;
        ++stats_.duplicated;
    }
    if (held_) {
        std::vector<std::uint8_t> late = std::move(*held_);
        held_.reset();
        ack = standby_.receive(late);
        ++stats_.delivered;
    }
    return ack;
}

} // namespace dp
