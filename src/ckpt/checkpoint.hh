/**
 * @file
 * Whole-machine checkpoints.
 *
 * A Checkpoint is what the thread-parallel execution produces at every
 * epoch boundary: a CoW memory snapshot plus copies of all thread
 * contexts and the OS state. Materializing one into a fresh Machine is
 * how an epoch-parallel execution (or a parallel replay worker) starts
 * an epoch on "its own copy of memory" — pages are shared copy-on-write
 * until written, exactly like the paper's fork-based checkpoints.
 */

#ifndef DP_CKPT_CHECKPOINT_HH
#define DP_CKPT_CHECKPOINT_HH

#include <cstdint>
#include <vector>

#include "mem/paged_memory.hh"
#include "os/machine.hh"
#include "vm/context.hh"

namespace dp
{

/** An immutable machine snapshot. */
class Checkpoint
{
  public:
    Checkpoint() = default;

    /**
     * Capture @p m's state. Non-const because taking the memory
     * snapshot resets dirty-page tracking (the next checkpoint's cost
     * is measured from this point).
     */
    static Checkpoint capture(Machine &m);

    /**
     * Fault-injection hook: capture a *torn* snapshot — one whose
     * digest no longer matches the machine it was taken from, as if a
     * page had been copied mid-update. @p salt perturbs the digest
     * deterministically. Consumers detect the tear via
     * consistentWith() and recapture.
     */
    static Checkpoint captureTorn(Machine &m, std::uint64_t salt);

    /** True if this snapshot's digest matches @p m's current state
     *  (false for a torn capture). */
    bool consistentWith(const Machine &m) const
    {
        return stateHash_ == m.stateHash();
    }

    /** Build a fresh Machine running this state. */
    Machine materialize(const GuestProgram &prog,
                        const MachineConfig &cfg) const;

    /** Overwrite @p m's state in place (rollback). */
    void restoreInto(Machine &m) const;

    /** Digest over memory + threads + OS state (excludes `now`). */
    std::uint64_t stateHash() const { return stateHash_; }

    const std::vector<ThreadContext> &threads() const
    {
        return threads_;
    }
    const MemSnapshot &memory() const { return mem_; }
    const OsState &osState() const { return os_; }
    Cycles capturedAt() const { return now_; }
    std::size_t residentPages() const { return mem_.residentPages(); }

  private:
    MemSnapshot mem_;
    std::vector<ThreadContext> threads_;
    OsState os_;
    Cycles now_ = 0;
    std::uint64_t stateHash_ = 0;
};

} // namespace dp

#endif // DP_CKPT_CHECKPOINT_HH
