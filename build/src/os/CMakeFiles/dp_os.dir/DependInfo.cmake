
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/machine.cc" "src/os/CMakeFiles/dp_os.dir/machine.cc.o" "gcc" "src/os/CMakeFiles/dp_os.dir/machine.cc.o.d"
  "/root/repo/src/os/multicpu_sim.cc" "src/os/CMakeFiles/dp_os.dir/multicpu_sim.cc.o" "gcc" "src/os/CMakeFiles/dp_os.dir/multicpu_sim.cc.o.d"
  "/root/repo/src/os/os_state.cc" "src/os/CMakeFiles/dp_os.dir/os_state.cc.o" "gcc" "src/os/CMakeFiles/dp_os.dir/os_state.cc.o.d"
  "/root/repo/src/os/simos.cc" "src/os/CMakeFiles/dp_os.dir/simos.cc.o" "gcc" "src/os/CMakeFiles/dp_os.dir/simos.cc.o.d"
  "/root/repo/src/os/uni_runner.cc" "src/os/CMakeFiles/dp_os.dir/uni_runner.cc.o" "gcc" "src/os/CMakeFiles/dp_os.dir/uni_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dp_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
