/**
 * @file
 * Minimal JSON document model: an ordered DOM with a writer and a
 * fail-closed recursive-descent parser.
 *
 * The trace layer emits Chrome trace-event files and metrics
 * snapshots, the bench harness emits BENCH_*.json result files, and
 * the contract tests parse all of them back to check structure — so
 * both directions live here, dependency-free (dp_common only).
 * Parsing is fail-closed: malformed input of any shape yields
 * std::nullopt plus a diagnostic, never a crash, unbounded recursion,
 * or a silently-wrong document.
 */

#ifndef DP_TRACE_JSON_HH
#define DP_TRACE_JSON_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dp
{

/** One JSON value; objects preserve insertion order. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    static JsonValue null() { return JsonValue(); }
    static JsonValue boolean(bool b);
    static JsonValue number(double v);
    static JsonValue number(std::uint64_t v);
    static JsonValue number(std::int64_t v);
    static JsonValue str(std::string s);
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    const std::string &asString() const { return str_; }
    const std::vector<JsonValue> &items() const { return items_; }
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }

    /** Array append (no-op unless this is an array). */
    void push(JsonValue v);
    /** Object insert/overwrite (no-op unless this is an object). */
    void set(std::string key, JsonValue v);
    /** Object lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Serialize compactly (no insignificant whitespace). Numbers
     *  that are integral and within 2^53 print without a decimal
     *  point, so u64 counters round-trip textually. */
    std::string dump() const;

    /**
     * Parse @p text as one JSON document. Fail-closed: any
     * malformation (trailing bytes, bad escapes, depth bombs) yields
     * nullopt and, when @p error is non-null, a diagnostic naming the
     * problem and its byte offset.
     */
    static std::optional<JsonValue> parse(std::string_view text,
                                          std::string *error = nullptr);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Append @p s to @p out as a quoted, escaped JSON string literal. */
void appendJsonString(std::string &out, std::string_view s);

/** Append @p v to @p out with JsonValue::dump's number formatting. */
void appendJsonNumber(std::string &out, double v);

} // namespace dp

#endif // DP_TRACE_JSON_HH
