#include "analysis/debugger.hh"

#include "common/logging.hh"

namespace dp
{

ReplayDebugger::ReplayDebugger(const Recording &rec, CostModel costs)
    : rec_(&rec), replayer_(rec, costs),
      machine_(rec.program(), rec.config())
{}

std::uint32_t
ReplayDebugger::epochCount() const
{
    return static_cast<std::uint32_t>(rec_->epochs.size());
}

void
ReplayDebugger::resetToStart()
{
    machine_ = Machine(rec_->program(), rec_->config());
    position_ = 0;
}

bool
ReplayDebugger::seek(EpochId epoch)
{
    dp_assert(epoch <= epochCount(), "seek past the recording's end");
    if (epoch < position_) {
        if (rec_->hasCheckpoints()) {
            // O(1) rewind: materialize the target boundary directly.
            if (epoch < epochCount()) {
                machine_ = rec_->checkpoints[epoch].materialize(
                    rec_->program(), rec_->config());
                position_ = epoch;
                return true;
            }
        }
        resetToStart();
    }
    // Forward jumps can also shortcut through checkpoints.
    if (rec_->hasCheckpoints() && epoch < epochCount() &&
        epoch > position_) {
        machine_ = rec_->checkpoints[epoch].materialize(
            rec_->program(), rec_->config());
        position_ = epoch;
        return true;
    }
    while (position_ < epoch) {
        if (!step())
            return false;
    }
    return true;
}

bool
ReplayDebugger::step()
{
    dp_assert(position_ < epochCount(),
              "stepping past the recording's end");
    if (!replayer_.replayOneEpoch(machine_, position_)) {
        dp_warn("debugger: epoch ", position_,
                " failed to verify during replay");
        return false;
    }
    ++position_;
    return true;
}

std::optional<std::vector<WatchedAccess>>
ReplayDebugger::watch(Addr addr, std::uint64_t len)
{
    dp_assert(position_ < epochCount(),
              "watch needs an epoch ahead of the position");
    std::vector<WatchedAccess> hits;
    ReplayObserver obs;
    obs.onMemAccess = [&](ThreadId tid, Addr a, unsigned size,
                          bool is_write, bool is_atomic) {
        if (a + size > addr && a < addr + len)
            hits.push_back({position_, tid, a, size, is_write,
                            is_atomic});
    };

    // Replay a scratch copy so the position is unchanged.
    Machine scratch = machine_;
    if (!replayer_.replayOneEpoch(scratch, position_, &obs))
        return std::nullopt;
    return hits;
}

std::optional<EpochId>
ReplayDebugger::findFirstBoundary(
    const std::function<bool(const Machine &)> &pred)
{
    if (!seek(0))
        return std::nullopt;
    for (;;) {
        if (pred(machine_))
            return position_;
        if (position_ >= epochCount())
            return std::nullopt;
        if (!step())
            return std::nullopt;
    }
}

} // namespace dp
