#include "vm/program.hh"

#include <atomic>
#include <mutex>

#include "common/hash.hh"
#include "mem/paged_memory.hh"
#include "vm/decode.hh"

namespace dp
{

namespace detail
{

std::uint64_t
nextCodeStamp()
{
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

} // namespace detail

void
GuestProgram::invalidateCode()
{
    codeStamp_ = detail::nextCodeStamp();
    decoded_.reset();
}

std::shared_ptr<const DecodedProgram>
GuestProgram::decoded() const
{
    // One global lock: decoding happens once per program version, and
    // concurrent epoch workers racing here would all build the same
    // decode anyway — serializing the rare build is cheaper than a
    // per-program lock in every copyable program object.
    static std::mutex decode_mutex;
    std::scoped_lock lock(decode_mutex);
    if (!decoded_ || decoded_->stamp != codeStamp_)
        decoded_ = DecodedProgram::build(*this);
    return decoded_;
}

void
GuestProgram::loadInto(PagedMemory &mem) const
{
    for (const auto &[base, bytes] : dataSegments)
        mem.writeBytes(base, bytes);
}

std::uint64_t
GuestProgram::hash() const
{
    Digest d;
    d.bytes({reinterpret_cast<const std::uint8_t *>(name.data()),
             name.size()});
    for (const Instr &in : code) {
        d.word(static_cast<std::uint64_t>(in.op));
        d.word(static_cast<std::uint64_t>(in.rd));
        d.word(static_cast<std::uint64_t>(in.rs1) |
               (static_cast<std::uint64_t>(in.rs2) << 8));
        d.word(static_cast<std::uint64_t>(in.imm));
    }
    for (const auto &[base, bytes] : dataSegments) {
        d.word(base);
        d.bytes(bytes);
    }
    d.word(entry);
    return d.value();
}

} // namespace dp
