/**
 * @file
 * Guest/OS ABI: system call numbers and calling convention.
 *
 * Convention: the syscall number is in r0 and arguments in r1..r5; the
 * result is returned in r0. On thread start, r1 holds the spawn
 * argument and r2 the thread's own id.
 */

#ifndef DP_VM_ABI_HH
#define DP_VM_ABI_HH

#include <cstdint>
#include <string_view>

namespace dp
{

/** System call numbers understood by SimOS. */
enum class Sys : std::uint64_t
{
    Exit = 0,      ///< exit(code): terminate the calling thread
    Write = 1,     ///< write(fd, buf, len) -> written
    Read = 2,      ///< read(fd, buf, len) -> read (0 at EOF)
    Open = 3,      ///< open(path_cstr, flags) -> fd or -1
    Close = 4,     ///< close(fd) -> 0 or -1
    Spawn = 5,     ///< spawn(entry_pc, arg) -> tid
    Join = 6,      ///< join(tid) -> exit code; blocks until tid exits
    Yield = 7,     ///< yield() -> 0: scheduling hint
    FutexWait = 8, ///< futex_wait(addr, expected) -> 0 woken, 1 mismatch
    FutexWake = 9, ///< futex_wake(addr, count) -> #woken
    GetTime = 10,  ///< gettime() -> virtual cycles (nondeterministic)
    NetRecv = 11,  ///< net_recv(conn, buf, maxlen) -> len (0 at stream end)
    NetSend = 12,  ///< net_send(conn, buf, len) -> len
    Random = 13,   ///< random() -> 64-bit value (from OS rng state)
    Seek = 14,     ///< seek(fd, offset) -> previous offset
    PipeWrite = 15, ///< pipe_write(pipe, buf, len) -> len
    PipeRead = 16, ///< pipe_read(pipe, buf, maxlen) -> len; blocks
                   ///< while the pipe is empty and writers exist
    PipeClose = 17, ///< pipe_close(pipe): EOF for blocked readers
    Kill = 18,      ///< kill(tid, sig): queue an async signal
    SigHandler = 19, ///< sighandler(entry_pc): register this thread's
                     ///< handler (sig arrives in r1; return via
                     ///< sigreturn)
    SigReturn = 20, ///< sigreturn(): resume the interrupted context

    NumSyscalls,
};

/** open() flag bits. */
enum OpenFlags : std::uint64_t
{
    openRead = 0,
    openWrite = 1,
    openCreate = 2,
};

/** Well-known file descriptors. */
inline constexpr std::int64_t fdStdout = 1;
inline constexpr std::int64_t fdStderr = 2;

/** Human-readable syscall name. */
std::string_view syscallName(Sys s);

/**
 * Syscalls whose result depends on the virtual clock rather than on
 * checkpointable machine state: GetTime reads the clock and NetRecv's
 * length depends on how much of the stream has arrived "by now". Their
 * results are captured from the thread-parallel run and injected into
 * the epoch-parallel run and into replay. Every other syscall is a
 * deterministic function of machine state and is simply re-executed.
 */
inline bool
isInjectableSyscall(Sys s)
{
    return s == Sys::GetTime || s == Sys::NetRecv;
}

} // namespace dp

#endif // DP_VM_ABI_HH
