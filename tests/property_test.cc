/**
 * @file
 * Property tests over randomly generated guest programs.
 *
 * A generator emits structurally valid, terminating multithreaded
 * programs mixing private compute, atomics, lock-protected shared
 * updates, barriers, syscalls (including injectables), and —
 * optionally — genuine data races. Every generated program must
 * satisfy DESIGN.md's invariants: data-race-free programs record with
 * zero rollbacks; racy programs record with recovery; every recording
 * replays exactly, sequentially and in parallel.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/recorder.hh"
#include "fault/fault.hh"
#include "journal/sharded.hh"
#include "replay/recording_io.hh"
#include "replay/replayer.hh"
#include "ship/link.hh"
#include "ship/sender.hh"
#include "ship/standby.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

struct PipelineCheck
{
    bool recordOk = false;
    std::uint32_t rollbacks = 0;
    bool seqOk = false;
    bool parOk = false;
};

PipelineCheck
checkFullPipeline(const GuestProgram &prog, std::uint64_t seed)
{
    MachineConfig cfg;
    cfg.netBytesPerConn = 8'192;
    cfg.netCyclesPerByte = 2;

    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 4'000;
    opts.seed = seed;
    UniparallelRecorder rec(prog, cfg, opts);
    RecordOutcome out = rec.record();

    PipelineCheck res;
    res.recordOk = out.ok;
    res.rollbacks = out.recording.stats.rollbacks;
    if (!out.ok)
        return res;
    Replayer rep(out.recording);
    res.seqOk = rep.replaySequential().ok;
    res.parOk = rep.replayParallel(2).ok;
    return res;
}

class RandomDrfPrograms
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomDrfPrograms, RecordZeroRollbacksAndReplay)
{
    GuestProgram prog =
        testprogs::randomProgram(GetParam(), {.allowRaces = false});
    PipelineCheck c = checkFullPipeline(prog, GetParam() * 31 + 7);
    ASSERT_TRUE(c.recordOk) << "seed " << GetParam();
    EXPECT_EQ(c.rollbacks, 0u)
        << "DRF program diverged (seed " << GetParam() << ")";
    EXPECT_TRUE(c.seqOk);
    EXPECT_TRUE(c.parOk);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDrfPrograms,
                         ::testing::Range<std::uint64_t>(1, 25));

class RandomRacyPrograms
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomRacyPrograms, RecordRecoversAndReplays)
{
    GuestProgram prog =
        testprogs::randomProgram(GetParam(), {.allowRaces = true});
    PipelineCheck c = checkFullPipeline(prog, GetParam() * 17 + 3);
    ASSERT_TRUE(c.recordOk)
        << "racy program failed to record (seed " << GetParam()
        << ")";
    EXPECT_TRUE(c.seqOk) << "seed " << GetParam();
    EXPECT_TRUE(c.parOk) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomRacyPrograms,
                         ::testing::Range<std::uint64_t>(100, 116));

/**
 * Draw a random fault plan: a few sites at moderate probabilities.
 * FileShortRead is excluded (random programs never use Sys::Read);
 * TornCheckpoint keeps a per-capture budget so recapture always
 * converges within the retry cap.
 */
FaultPlan
randomFaultPlan(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 5);
    FaultPlan plan;
    plan.seed = seed ^ 0xfa017;
    if (rng.chance(2, 3))
        plan.with(FaultSite::NetRecvFail, 0.01 * rng.range(1, 10));
    if (rng.chance(2, 3))
        plan.with(FaultSite::NetRecvShort, 0.01 * rng.range(1, 20));
    if (rng.chance(2, 3))
        plan.with(FaultSite::GetTimeFail, 0.01 * rng.range(1, 30));
    if (rng.chance(1, 2))
        plan.with(FaultSite::TornCheckpoint,
                  0.1 * rng.range(1, 5),
                  static_cast<std::uint32_t>(rng.range(1, 3)));
    if (rng.chance(1, 2))
        plan.with(FaultSite::WorkerDeath, 0.1 * rng.range(1, 6));
    if (!plan.enabled()) // always inject *something*
        plan.with(FaultSite::GetTimeFail, 0.2);
    return plan;
}

class RandomProgramsUnderFaults
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RandomProgramsUnderFaults, SurvivingRecordingsReplayExactly)
{
    const std::uint64_t seed = GetParam();
    GuestProgram prog =
        testprogs::randomProgram(seed, {.allowRaces = false});
    FaultInjector inj(randomFaultPlan(seed));

    MachineConfig cfg;
    cfg.netBytesPerConn = 8'192;
    cfg.netCyclesPerByte = 2;
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 4'000;
    opts.seed = seed * 31 + 7;
    opts.faults = &inj;

    std::uint32_t recoveries[4] = {};
    RecordObserver obs;
    obs.onRecovery = [&](RecoveryKind kind, EpochId) {
        ++recoveries[static_cast<std::uint8_t>(kind)];
    };

    UniparallelRecorder rec(prog, cfg, opts);
    RecordOutcome out = rec.record(&obs);

    // Fault injection may only fail a session *closed*.
    if (!out.ok) {
        EXPECT_EQ(out.tpReason, StopReason::Stalled)
            << "seed " << seed;
        return;
    }

    // The degradation counters mirror both the injector's decision
    // stream and the observer's recovery event stream.
    const RecorderStats &st = out.recording.stats;
    EXPECT_EQ(st.tornCheckpoints,
              inj.count(FaultSite::TornCheckpoint))
        << "seed " << seed;
    EXPECT_EQ(st.workerDeaths, inj.count(FaultSite::WorkerDeath))
        << "seed " << seed;
    EXPECT_EQ(st.epochRetries + st.seqFallbacks, st.workerDeaths);
    auto seen = [&](RecoveryKind k) {
        return recoveries[static_cast<std::uint8_t>(k)];
    };
    EXPECT_EQ(seen(RecoveryKind::Rollback), st.rollbacks);
    EXPECT_EQ(seen(RecoveryKind::CheckpointRecapture),
              st.tornCheckpoints);
    EXPECT_EQ(seen(RecoveryKind::EpochRetry), st.epochRetries);
    EXPECT_EQ(seen(RecoveryKind::SequentialFallback),
              st.seqFallbacks);

    // Any recording that survives recording + loading replays
    // exactly, sequentially and in parallel.
    std::vector<std::uint8_t> bytes =
        serializeRecording(out.recording);
    RecordingLoadResult loaded = loadRecording(bytes);
    ASSERT_TRUE(loaded.ok())
        << "seed " << seed << ": " << loadErrorName(loaded.error);
    ReplayResult mem = Replayer(out.recording).replaySequential();
    ReplayResult disk =
        Replayer(*loaded.recording).replaySequential();
    ASSERT_TRUE(mem.ok) << "seed " << seed;
    ASSERT_TRUE(disk.ok) << "seed " << seed;
    EXPECT_EQ(mem.stdoutBytes, disk.stdoutBytes) << "seed " << seed;
    EXPECT_TRUE(Replayer(out.recording).replayParallel(2).ok)
        << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomProgramsUnderFaults,
                         ::testing::Range<std::uint64_t>(300, 316));

/**
 * The incremental digest must equal the from-scratch recompute after
 * any interleaving of writes, snapshots, restores, dirty-tracking
 * resets and diffs. referenceHash() is an independent computation
 * path (it rehashes every resident page's bytes, bypassing both the
 * memo and the running XOR), so equality here is a real oracle.
 */
class IncrementalDigestProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(IncrementalDigestProperty, MatchesReferenceUnderRandomOps)
{
    Rng rng(GetParam() * 0x2545f4914f6cdd1dull + 11);
    PagedMemory mem;
    std::vector<MemSnapshot> snaps;
    constexpr std::uint64_t kPageSpan = 96; // keep footprints modest

    auto random_addr = [&] {
        return rng.below(kPageSpan) * Page::bytes +
               rng.below(Page::bytes);
    };

    for (int op = 0; op < 400; ++op) {
        switch (rng.below(10)) {
        case 0: case 1: case 2: case 3: // scalar writes dominate
            mem.write64(random_addr(), rng.next());
            break;
        case 4:
            mem.write8(random_addr(),
                       static_cast<std::uint8_t>(rng.next()));
            break;
        case 5: { // bulk write, possibly page-crossing
            std::vector<std::uint8_t> buf(rng.range(1, 3 * Page::bytes));
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            mem.writeBytes(random_addr(), buf);
            break;
        }
        case 6: // zero a whole page: must digest like absent
            for (std::size_t i = 0; i < Page::bytes; i += 8)
                mem.write64(rng.below(kPageSpan) * Page::bytes + i, 0);
            break;
        case 7:
            snaps.push_back(mem.snapshot());
            EXPECT_EQ(snaps.back().hash(), mem.referenceHash())
                << "seed " << GetParam() << " op " << op;
            break;
        case 8:
            if (!snaps.empty()) {
                const MemSnapshot &s =
                    snaps[rng.below(snaps.size())];
                EXPECT_GE(mem.diffPages(s).size(), 0u);
                mem.restore(s);
                EXPECT_TRUE(mem.dirtyPages().empty());
                EXPECT_EQ(mem.hash(), s.hash())
                    << "seed " << GetParam() << " op " << op;
            }
            break;
        case 9:
            mem.clearDirty();
            break;
        }
        if (op % 7 == 0) // query mid-stream: memo + fold paths
            (void)mem.hash();
        EXPECT_EQ(mem.hash(), mem.referenceHash())
            << "seed " << GetParam() << " op " << op;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IncrementalDigestProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(IncrementalDigestProperty, TornCaptureRetryLoopStaysCoherent)
{
    // The recorder's torn-capture recovery path: captureTorn yields a
    // checkpoint whose digest disagrees with the machine; detection
    // (consistentWith) and recapture must leave the incremental digest
    // exact, and the recaptured checkpoint must restore byte- and
    // digest-identically.
    GuestProgram prog =
        testprogs::randomProgram(42, {.allowRaces = false});
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    EXPECT_NE(r.run(), StopReason::Deadlock);

    for (std::uint64_t salt = 1; salt <= 4; ++salt) {
        Checkpoint torn = Checkpoint::captureTorn(m, salt);
        EXPECT_FALSE(torn.consistentWith(m)) << "salt " << salt;
        EXPECT_EQ(m.mem.hash(), m.mem.referenceHash());
        Checkpoint good = Checkpoint::capture(m);
        ASSERT_TRUE(good.consistentWith(m)) << "salt " << salt;

        Machine other = good.materialize(prog, {});
        EXPECT_EQ(other.stateHash(), good.stateHash());
        EXPECT_EQ(other.mem.hash(), other.mem.referenceHash());
    }
}

/** Epochs below @p cut owned by stream @p s of @p n (base 0). */
std::uint64_t
shardOwnedBelow(std::uint64_t cut, unsigned s, unsigned n)
{
    return cut > s ? (cut - 1 - s) / n + 1 : 0;
}

/**
 * Sharded-journal recovery against a from-scratch oracle: random
 * stream counts, random crash points (byte-level torn tails), random
 * bit flips. The oracle predicts the consistent cut from the frame
 * geometry alone — a stream keeps the frames wholly below its first
 * damaged byte, and the cut is the first epoch missing from its
 * owner — independent of the recovery code under test. Recovery must
 * match it exactly at every jobs count, byte-identically.
 */
class ShardedJournalRecoveryProperty
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ShardedJournalRecoveryProperty, RecoveredPrefixMatchesOracle)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 13);

    GuestProgram prog =
        testprogs::randomProgram(seed, {.allowRaces = false});
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 4'000;
    opts.seed = seed * 31 + 7;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok) << "seed " << seed;
    const Recording &r = out.recording;

    const unsigned n = 1 + static_cast<unsigned>(rng.below(4));
    const std::uint64_t appends = rng.range(2 * n, 24);
    ShardedJournalWriter w(r.program(), r.config(),
                           recorderOptionsFingerprint(opts),
                           {.streams = n});
    if (rng.chance(1, 2))
        w.enableAsyncCommit();
    for (std::uint64_t i = 0; i < appends; ++i)
        w.appendEpoch(r.epochs[i % r.epochs.size()],
                      static_cast<EpochId>(i));
    w.flush();
    std::vector<std::vector<std::size_t>> frame_ends;
    for (unsigned s = 0; s < n; ++s)
        frame_ends.push_back(w.streamFrameEnds(s));
    const std::vector<std::vector<std::uint8_t>> pristine =
        w.imageSet();

    for (int round = 0; round < 4; ++round) {
        std::vector<std::vector<std::uint8_t>> images = pristine;
        std::vector<std::size_t> damage; // first damaged byte
        for (unsigned s = 0; s < n; ++s) {
            std::size_t keep = images[s].size();
            if (!rng.chance(1, 3))
                keep = rng.below(images[s].size() + 1);
            images[s].resize(keep);
            damage.push_back(keep);
        }
        if (rng.chance(1, 2)) {
            const unsigned t = static_cast<unsigned>(rng.below(n));
            if (!images[t].empty()) {
                const std::size_t pos = rng.below(images[t].size());
                images[t][pos] ^=
                    static_cast<std::uint8_t>(1 + rng.below(255));
                damage[t] = std::min(damage[t], pos);
            }
        }

        std::uint64_t expect_cut = 0;
        bool any_usable = false;
        for (unsigned s = 0; s < n; ++s) {
            const std::vector<std::size_t> &ends = frame_ends[s];
            std::uint64_t kept = 0;
            if (damage[s] >= ends[0]) { // header survived
                any_usable = true;
                while (kept + 1 < ends.size() &&
                       ends[kept + 1] <= damage[s])
                    ++kept;
            }
            const std::uint64_t missing = kept * n + s;
            if (s == 0 || missing < expect_cut)
                expect_cut = missing;
        }

        std::vector<std::span<const std::uint8_t>> spans(
            images.begin(), images.end());
        std::vector<std::uint8_t> baseline;
        for (unsigned jobs : {1u, 2u, 4u}) {
            RecoveredShardedJournal rj =
                recoverShardedJournal(spans, jobs);
            if (!any_usable) {
                // Not one trustworthy header: recover nothing.
                EXPECT_FALSE(rj.report.headerOk)
                    << "seed " << seed << " round " << round;
                EXPECT_EQ(rj.recording, nullptr);
                continue;
            }
            EXPECT_TRUE(rj.report.headerOk)
                << "seed " << seed << " round " << round;
            EXPECT_EQ(rj.consistentEpochs, expect_cut)
                << "seed " << seed << " round " << round
                << " jobs " << jobs;
            ASSERT_NE(rj.recording, nullptr);
            ASSERT_EQ(rj.recording->epochs.size(), expect_cut);
            for (std::uint64_t i = 0; i < expect_cut; ++i) {
                const EpochRecord &got = rj.recording->epochs[i];
                const EpochRecord &src =
                    r.epochs[i % r.epochs.size()];
                EXPECT_EQ(got.endStateHash, src.endStateHash)
                    << "seed " << seed << " epoch " << i;
                EXPECT_TRUE(got.schedule == src.schedule);
            }
            for (unsigned s = 0; s < n; ++s) {
                if (rj.streams[s].report.headerOk) {
                    EXPECT_EQ(rj.streams[s].framesKept,
                              shardOwnedBelow(expect_cut, s, n))
                        << "seed " << seed << " stream " << s;
                }
            }
            std::vector<std::uint8_t> bytes =
                serializeRecording(*rj.recording);
            if (jobs == 1)
                baseline = std::move(bytes);
            else
                EXPECT_EQ(bytes, baseline)
                    << "recovery diverged at jobs " << jobs;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardedJournalRecoveryProperty,
                         ::testing::Range<std::uint64_t>(500, 512));

/** Random per-stream fault plan: torn writes, stream crashes, bit
 *  flips at moderate probabilities under one master seed. */
FaultPlan
randomStreamFaultPlan(std::uint64_t seed)
{
    Rng rng(seed * 0x2545f4914f6cdd1dull + 29);
    FaultPlan plan;
    plan.seed = seed ^ 0x57e4a;
    if (rng.chance(2, 3))
        plan.with(FaultSite::StreamTornWrite, 0.02 * rng.range(1, 8),
                  static_cast<std::uint32_t>(rng.range(1, 2)));
    if (rng.chance(2, 3))
        plan.with(FaultSite::StreamCrash, 0.02 * rng.range(1, 4), 1);
    if (rng.chance(2, 3))
        plan.with(FaultSite::StreamBitFlip, 0.02 * rng.range(1, 8),
                  static_cast<std::uint32_t>(rng.range(1, 2)));
    if (!plan.enabled()) // always inject *something*
        plan.with(FaultSite::StreamTornWrite, 0.1, 1);
    return plan;
}

/**
 * Random stream-level fault plans during the append run: whatever the
 * injector did, recovery must agree with itself at every jobs count,
 * the cut must be exactly what the per-stream prefixes allow, and a
 * resumed session over the recovered prefixes must complete the
 * journal to a clean full recovery.
 */
class ShardedJournalUnderStreamFaults
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ShardedJournalUnderStreamFaults, RecoversMergesAndResumes)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 41);

    GuestProgram prog =
        testprogs::randomProgram(seed, {.allowRaces = false});
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 4'000;
    opts.seed = seed * 17 + 5;
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record();
    ASSERT_TRUE(out.ok) << "seed " << seed;
    const Recording &r = out.recording;
    const std::uint64_t fp = recorderOptionsFingerprint(opts);

    const unsigned n = 2 + static_cast<unsigned>(rng.below(3));
    const std::uint64_t appends = rng.range(8, 24);
    FaultInjector inj(randomStreamFaultPlan(seed));
    ShardedJournalWriter w(r.program(), r.config(), fp,
                           {.streams = n}, &inj);
    if (rng.chance(1, 2))
        w.enableAsyncCommit();
    for (std::uint64_t i = 0; i < appends; ++i)
        w.appendEpoch(r.epochs[i % r.epochs.size()],
                      static_cast<EpochId>(i));
    w.flush();
    std::vector<std::vector<std::uint8_t>> images = w.imageSet();
    std::vector<std::span<const std::uint8_t>> spans(images.begin(),
                                                     images.end());

    std::uint64_t cut = 0;
    std::vector<std::uint8_t> baseline;
    for (unsigned jobs : {1u, 2u, 4u}) {
        RecoveredShardedJournal rj =
            recoverShardedJournal(spans, jobs);
        // Stream faults only damage epoch frames; every header (and
        // so the majority vote) survives.
        EXPECT_TRUE(rj.report.headerOk) << "seed " << seed;
        ASSERT_NE(rj.recording, nullptr);
        // The merge is exactly the per-stream scans' consistent cut.
        std::uint64_t expect = 0;
        for (unsigned s = 0; s < n; ++s) {
            const std::uint64_t missing =
                rj.streams[s].report.framesRecovered * n + s;
            if (s == 0 || missing < expect)
                expect = missing;
        }
        EXPECT_EQ(rj.consistentEpochs, expect) << "seed " << seed;
        for (unsigned s = 0; s < n; ++s)
            EXPECT_EQ(rj.streams[s].framesKept,
                      shardOwnedBelow(expect, s, n))
                << "seed " << seed << " stream " << s;
        std::vector<std::uint8_t> bytes =
            serializeRecording(*rj.recording);
        if (jobs == 1) {
            cut = rj.consistentEpochs;
            baseline = std::move(bytes);
            for (unsigned s = 0; s < n; ++s)
                images[s].resize(rj.streams[s].keptBytes);
        } else {
            EXPECT_EQ(rj.consistentEpochs, cut);
            EXPECT_EQ(bytes, baseline)
                << "recovery diverged at jobs " << jobs;
        }
    }

    // Resume over the validated prefixes (no faults this time) and
    // finish the run: the journal must recover clean and complete.
    ShardedJournalWriter resumed(std::move(images), {.streams = n});
    EXPECT_EQ(resumed.epochsWritten(), cut);
    for (std::uint64_t i = cut; i < appends; ++i)
        resumed.appendEpoch(r.epochs[i % r.epochs.size()],
                            static_cast<EpochId>(i));
    resumed.flush();
    const std::vector<std::vector<std::uint8_t>> final_images =
        resumed.imageSet();
    std::vector<std::span<const std::uint8_t>> final_spans(
        final_images.begin(), final_images.end());
    RecoveredShardedJournal full =
        recoverShardedJournal(final_spans, 2);
    EXPECT_TRUE(full.report.clean()) << "seed " << seed;
    EXPECT_EQ(full.consistentEpochs, appends);
    ASSERT_NE(full.recording, nullptr);
    ASSERT_EQ(full.recording->epochs.size(), appends);
    for (std::uint64_t i = 0; i < appends; ++i)
        EXPECT_EQ(full.recording->epochs[i].endStateHash,
                  r.epochs[i % r.epochs.size()].endStateHash)
            << "seed " << seed << " epoch " << i;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardedJournalUnderStreamFaults,
                         ::testing::Range<std::uint64_t>(700, 710));

/**
 * Journal shipping under randomized link-fault plans, stream counts,
 * batch sizes, and lag bounds: the standby must converge or fail
 * closed — never diverge silently. Whenever a machine is promoted,
 * its state hash equals what recovery of the standby's own persisted
 * images computes (the cut the paper's cold restart would reach);
 * whenever the sender finishes cleanly, the standby holds the full
 * source. A refused promotion is only legal when the standby failed
 * closed or never materialized a replica.
 */
class ShipProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ShipProperty, RandomLinkFaultPlansConvergeOrFailClosed)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 53);

    GuestProgram prog =
        testprogs::randomProgram(seed, {.allowRaces = false});
    RecorderOptions opts;
    opts.workerCpus = 2;
    opts.epochLength = 4'000;
    opts.seed = seed * 17 + 3;
    const unsigned n = rng.chance(1, 2) ? 1 : 3;
    ShardedJournalWriter w(prog, {},
                           recorderOptionsFingerprint(opts),
                           {.streams = n});
    RecordObserver obs;
    obs.addEpochSink([&](const EpochRecord &e, EpochId index) {
        w.appendEpoch(e, index);
    });
    UniparallelRecorder rec(prog, {}, opts);
    RecordOutcome out = rec.record(&obs);
    ASSERT_TRUE(out.ok) << "seed " << seed;
    w.flush();
    const std::vector<std::vector<std::uint8_t>> images =
        w.imageSet();
    const std::uint64_t total = out.recording.epochs.size();

    const FaultSite linkSites[] = {
        FaultSite::LinkDrop,      FaultSite::LinkDuplicate,
        FaultSite::LinkReorder,   FaultSite::LinkTornBatch,
        FaultSite::LinkDisconnect, FaultSite::StandbyCrash,
    };
    const double probs[] = {0.0, 0.05, 0.15, 0.35};
    const std::uint64_t lagBounds[] = {1, 4, 16};

    FaultPlan plan;
    plan.seed = seed * 131 + 7;
    for (FaultSite site : linkSites)
        plan.with(site, probs[rng.below(4)]);
    FaultInjector faults(plan);

    StandbyApplier standby(
        {.lagBound = lagBounds[rng.below(3)], .faults = &faults});
    ShipLink link(standby, &faults);
    ShipSenderOptions sopts;
    sopts.batchBytes = rng.chance(1, 2) ? 512 : 4096;
    sopts.maxAttempts = 8;
    sopts.seed = seed + 1;
    ShipSender sender(
        link, n,
        [&](unsigned s) -> std::span<const std::uint8_t> {
            return images[s];
        },
        sopts);
    const bool caughtUp = sender.pump();
    Promotion p = standby.promote();

    if (p.report.promoted) {
        // Never silent divergence: the promoted machine's state is
        // exactly what cold recovery of the standby's own images
        // reaches.
        std::vector<std::vector<std::uint8_t>> simages =
            standby.imageSet();
        std::vector<std::span<const std::uint8_t>> spans(
            simages.begin(), simages.end());
        RecoveredShardedJournal rj = recoverShardedJournal(spans);
        ASSERT_NE(rj.recording, nullptr) << "seed " << seed;
        EXPECT_EQ(p.report.replayedEpochs, rj.consistentEpochs)
            << "seed " << seed;
        EXPECT_EQ(p.report.finalStateHash,
                  rj.recording->finalStateHash)
            << "seed " << seed;
        ASSERT_NE(p.machine, nullptr);
        EXPECT_EQ(p.machine->stateHash(), p.report.finalStateHash);
    } else {
        EXPECT_TRUE(p.report.failedClosed ||
                    p.report.replayedEpochs == 0)
            << "seed " << seed
            << ": a refused promotion needs a reason";
    }
    if (caughtUp && !sender.failed()) {
        // A clean sender finish means nothing was lost: the standby
        // holds and replayed the full source.
        EXPECT_TRUE(p.report.promoted) << "seed " << seed;
        EXPECT_EQ(p.report.replayedEpochs, total) << "seed " << seed;
        EXPECT_EQ(p.report.finalStateHash,
                  out.recording.finalStateHash)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShipProperty,
                         ::testing::Range<std::uint64_t>(900, 912));

TEST(RandomPrograms, UniprocessorExecutionIsDeterministic)
{
    for (std::uint64_t seed = 200; seed < 208; ++seed) {
        GuestProgram prog =
            testprogs::randomProgram(seed, {.allowRaces = true});
        auto run_hash = [&] {
            Machine m(prog, {});
            SimOS os;
            UniRunner r(m, os, {}, {});
            EXPECT_NE(r.run(), StopReason::Deadlock);
            return m.stateHash();
        };
        EXPECT_EQ(run_hash(), run_hash()) << "seed " << seed;
    }
}

} // namespace
} // namespace dp
