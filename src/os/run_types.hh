/**
 * @file
 * Types shared by the execution engines.
 */

#ifndef DP_OS_RUN_TYPES_HH
#define DP_OS_RUN_TYPES_HH

#include <cstdint>
#include <optional>

#include "common/types.hh"

namespace dp
{

/** Classification of a guest synchronization point. */
enum class SyncKind : std::uint8_t
{
    Atomic,  ///< Cas / FetchAdd / Xchg instruction
    Syscall, ///< any system call
};

/**
 * Identity of the synchronization object an operation acts on. The
 * recorder logs (and the epoch-parallel run enforces) a *per-object*
 * order, not a global one — exactly the happens-before DoublePlay's
 * thread-parallel run captures. Atomic instructions and futex calls
 * on the same guest word share that word's key (a futex wait races
 * with the releasing store, so they must be ordered together); every
 * other state-touching syscall shares one conservative global key.
 */
using SyncKey = std::uint64_t;

/** Key for OS-wide syscalls (files, threads, clock, network). */
inline constexpr SyncKey globalSyncKey = ~SyncKey{0};

/**
 * Sync key for the pending syscall given its number and first
 * argument; nullopt for Yield, which has no shared-state effect and
 * needs no ordering.
 */
std::optional<SyncKey> syscallSyncKey(std::uint64_t sysno,
                                      std::uint64_t a1);

/** Why an engine's run() returned. */
enum class StopReason : std::uint8_t
{
    AllExited,      ///< every guest thread exited
    TimeLimit,      ///< the requested virtual-time limit was reached
    TargetsReached, ///< every thread satisfied its epoch target
    Deadlock,       ///< live threads exist but all are blocked
    Stalled,        ///< progress impossible under targets/constraints
                    ///< (divergence suspected)
    FuelExhausted,  ///< the instruction fuse tripped
    ScheduleEnded,  ///< replay consumed the entire schedule log
};

/**
 * One asynchronous signal delivery: signal @p sig entered thread
 * @p tid's handler when the thread had retired exactly @p retired
 * instructions. The thread-parallel run logs these; epoch-parallel
 * runs and replay deliver exactly at the same points.
 */
struct SignalEvent
{
    ThreadId tid = 0;
    std::uint64_t retired = 0;
    std::uint8_t sig = 0;

    bool operator==(const SignalEvent &) const = default;
};

/** Human-readable StopReason name. */
const char *stopReasonName(StopReason r);

/** Aggregate counters for one engine run. */
struct RunStats
{
    Cycles cycles = 0;           ///< virtual time consumed
    std::uint64_t instrs = 0;    ///< guest instructions retired
    std::uint64_t syncOps = 0;   ///< atomic instructions executed
    std::uint64_t syscalls = 0;  ///< syscalls executed (incl. blocked)
    std::uint64_t switches = 0;  ///< context switches / migrations
};

} // namespace dp

#endif // DP_OS_RUN_TYPES_HH
