#include "replay/replayer.hh"

#include <algorithm>

#include "common/logging.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "trace/trace.hh"

namespace dp
{

bool
Replayer::replayEpochOn(Machine &m, const EpochRecord &epoch,
                        Cycles &cycles, std::uint64_t &instrs,
                        const ReplayObserver *observer) const
{
    return replayEpochOnMachine(m, epoch, costs_, cycles, instrs,
                                observer);
}

ReplayResult
Replayer::replaySequential(const ReplayObserver *observer) const
{
    ReplayResult res;
    Machine m(rec_->program(), rec_->config());

    for (std::uint32_t i = 0; i < rec_->epochs.size(); ++i) {
        if (observer && observer->onEpochStart)
            observer->onEpochStart(i);
        ScopedTraceSpan span(trace_, TraceStage::Replay, 0,
                             "replay-epoch", "replay");
        span.arg("epoch", i);
        if (!replayEpochOn(m, rec_->epochs[i], res.replayCycles,
                           res.instrs, observer)) {
            res.firstFailedEpoch = i;
            return res;
        }
        ++res.epochsVerified;
    }
    res.ok = res.epochsVerified == rec_->epochs.size() &&
             m.stateHash() == rec_->finalStateHash;
    res.stdoutBytes = m.stdoutBytes();
    return res;
}

ReplayResult
Replayer::replayParallel(unsigned tracks, unsigned jobs) const
{
    ReplayResult res;
    if (!rec_->hasCheckpoints()) {
        dp_warn("parallel replay requires retained checkpoints");
        return res;
    }
    tracks = std::max(1u, tracks);
    if (jobs == 0)
        jobs = tracks;

    const auto n = static_cast<std::uint32_t>(rec_->epochs.size());
    if (n == 0) {
        // Empty recording: the verdict is the initial state's digest
        // against finalStateHash, same as sequential replay.
        Machine m(rec_->program(), rec_->config());
        res.ok = m.stateHash() == rec_->finalStateHash;
        res.stdoutBytes = m.stdoutBytes();
        return res;
    }

    // The host pool the epochs fan out over. The owned pool outlives
    // this call on purpose — repeat replays (the debugger's bisect
    // loop, the bench harness) reuse the same workers instead of
    // spawning a fresh pool per call.
    Executor *exec = exec_;
    if (!exec) {
        if (!pool_ || pool_->workerCount() != jobs)
            pool_ = std::make_unique<Executor>(
                jobs, ExecutorOptions{.trace = trace_});
        exec = pool_.get();
    }

    std::vector<std::uint8_t> ok(n, 0);
    std::vector<Cycles> cycles(n, 0);
    std::vector<std::uint64_t> instrs(n, 0);
    // The last epoch's end machine holds the run's complete final
    // state (each checkpoint carries the stdout written so far), so
    // the task that replays it reconstructs the whole-run verdict
    // material; exactly one task owns that index.
    std::uint64_t final_hash = 0;
    std::vector<std::uint8_t> final_stdout;

    // One task per epoch; every slot an epoch's task touches is its
    // own, so tasks never contend. Submission back-pressures against
    // the pool's bounded queue; the waits below are the barrier.
    std::vector<TaskFuture<void>> futs;
    futs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        futs.push_back(exec->submit(
            [&, i](const TaskContext &ctx) {
                ScopedTraceSpan span(trace_, TraceStage::Replay,
                                     ctx.worker, "replay-epoch",
                                     "replay");
                span.arg("epoch", i);
                Machine m = rec_->checkpoints[i].materialize(
                    rec_->program(), rec_->config());
                ok[i] = replayEpochOn(m, rec_->epochs[i], cycles[i],
                                      instrs[i]);
                if (i == n - 1) {
                    final_hash = m.stateHash();
                    final_stdout = m.stdoutBytes();
                }
            },
            {.label = "replay-epoch"}));
    for (const TaskFuture<void> &f : futs)
        f.wait();
    // Quiesce the pool before returning: a future completes before
    // its worker's trace span and stats tally land, and callers may
    // read (or destroy) the trace sink the moment we return.
    exec->drain();

    // Modeled makespan: longest-processing-time list scheduling of
    // the epoch durations over the *modeled* worker count — the host
    // pool size never shapes reported cycles.
    std::vector<Cycles> sorted(cycles.begin(), cycles.end());
    std::sort(sorted.rbegin(), sorted.rend());
    std::vector<Cycles> load(tracks, 0);
    for (Cycles c : sorted)
        *std::min_element(load.begin(), load.end()) += c;
    res.replayCycles =
        load.empty() ? 0 : *std::max_element(load.begin(), load.end());

    for (std::uint32_t i = 0; i < n; ++i) {
        res.instrs += instrs[i];
        if (ok[i]) {
            ++res.epochsVerified;
        } else if (res.firstFailedEpoch == ~std::uint32_t{0}) {
            res.firstFailedEpoch = i;
        }
    }
    // Same verdict contract as replaySequential: every epoch digest
    // must verify AND the final state must match the recording's
    // finalStateHash — a tampered trailer fails --parallel too.
    res.ok = res.epochsVerified == n &&
             final_hash == rec_->finalStateHash;
    res.stdoutBytes = std::move(final_stdout);
    return res;
}

} // namespace dp
