file(REMOVE_RECURSE
  "CMakeFiles/dp_replay.dir/live_replica.cc.o"
  "CMakeFiles/dp_replay.dir/live_replica.cc.o.d"
  "CMakeFiles/dp_replay.dir/recording_io.cc.o"
  "CMakeFiles/dp_replay.dir/recording_io.cc.o.d"
  "CMakeFiles/dp_replay.dir/replayer.cc.o"
  "CMakeFiles/dp_replay.dir/replayer.cc.o.d"
  "libdp_replay.a"
  "libdp_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
