/**
 * @file
 * Unit tests for the common utilities: hashing, RNG, byte codecs,
 * statistics, and table formatting.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bytes.hh"
#include "common/crc32.hh"
#include "common/hash.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace dp
{
namespace
{

TEST(Hash, Fnv1aMatchesKnownVector)
{
    // FNV-1a of empty input is the offset basis.
    EXPECT_EQ(fnv1a64({}), 0xcbf29ce484222325ull);
    const std::uint8_t a[] = {'a'};
    EXPECT_EQ(fnv1a64(a), 0xaf63dc4c8601ec8cull);
}

TEST(Hash, FastHash64DiscriminatesContentAndLength)
{
    std::vector<std::uint8_t> x(100, 7);
    std::vector<std::uint8_t> y(100, 7);
    EXPECT_EQ(fastHash64(x), fastHash64(y));
    y[63] = 8;
    EXPECT_NE(fastHash64(x), fastHash64(y));
    std::vector<std::uint8_t> z(101, 7);
    EXPECT_NE(fastHash64(x), fastHash64(z));
}

TEST(Hash, FastHash64HandlesAllTailLengths)
{
    std::set<std::uint64_t> seen;
    for (std::size_t n = 0; n < 17; ++n) {
        std::vector<std::uint8_t> v(n, 0xab);
        seen.insert(fastHash64(v));
    }
    EXPECT_EQ(seen.size(), 17u) << "length must affect the digest";
}

TEST(Hash, DigestIsOrderSensitive)
{
    Digest a, b;
    a.word(1);
    a.word(2);
    b.word(2);
    b.word(1);
    EXPECT_NE(a.value(), b.value());
}

TEST(Hash, WideHash64UnrolledMatchesReference)
{
    // The unrolled 8-lane kernel and the plain-loop reference are two
    // spellings of one function; page hashes (and so every recorded
    // endStateHash) depend on them never diverging.
    Rng rng(0x51deb00c);
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{7}, std::size_t{8},
                          std::size_t{63}, std::size_t{64},
                          std::size_t{65}, std::size_t{127},
                          std::size_t{512}, std::size_t{4096},
                          std::size_t{4099}}) {
        std::vector<std::uint8_t> v(n);
        for (auto &b : v)
            b = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(wideHash64(v), wideHash64Reference(v))
            << "length " << n;
        EXPECT_EQ(wideHash64(v, 123), wideHash64Reference(v, 123))
            << "seeded, length " << n;
    }
}

TEST(Hash, WideHash64DiscriminatesContentLengthAndSeed)
{
    std::vector<std::uint8_t> x(4096, 0);
    std::vector<std::uint8_t> y(4096, 0);
    EXPECT_EQ(wideHash64(x), wideHash64(y));
    y[4095] = 1;
    EXPECT_NE(wideHash64(x), wideHash64(y));
    y[4095] = 0;
    y[0] = 1;
    EXPECT_NE(wideHash64(x), wideHash64(y));
    std::vector<std::uint8_t> z(4095, 0);
    EXPECT_NE(wideHash64(x), wideHash64(z));
    EXPECT_NE(wideHash64(x), wideHash64(x, 1));

    std::set<std::uint64_t> seen;
    for (std::size_t n = 0; n < 130; ++n)
        seen.insert(wideHash64(std::vector<std::uint8_t>(n, 0xcd)));
    EXPECT_EQ(seen.size(), 130u) << "length must affect the digest";
}

TEST(Crc32, MatchesKnownAnswerVector)
{
    // The canonical CRC-32C check vector (RFC 3720 appendix).
    const char *s = "123456789";
    std::span<const std::uint8_t> bytes{
        reinterpret_cast<const std::uint8_t *>(s), 9};
    EXPECT_EQ(crc32c(bytes), 0xE3069283u);
    EXPECT_EQ(crc32cScalar(bytes), 0xE3069283u);
    EXPECT_EQ(crc32c(std::span<const std::uint8_t>{}), 0u);
}

TEST(Crc32, SeedChainingComposesAtEverySplit)
{
    // crc32c(a ++ b) == crc32c(b, crc32c(a)) for every split: journal
    // frames chain the kind byte into the payload CRC this way, and
    // the hardware path consumes 8/4/2/1-byte steps — so any split
    // misbehavior would silently fork the two implementations.
    Rng rng(0xc4c32c);
    std::vector<std::uint8_t> v(97);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.next());
    const std::uint32_t whole = crc32c(v);
    for (std::size_t cut = 0; cut <= v.size(); ++cut) {
        std::span<const std::uint8_t> head{v.data(), cut};
        std::span<const std::uint8_t> tail{v.data() + cut,
                                           v.size() - cut};
        EXPECT_EQ(crc32c(tail, crc32c(head)), whole) << "cut " << cut;
        EXPECT_EQ(crc32cScalar(tail, crc32cScalar(head)), whole)
            << "scalar cut " << cut;
    }
}

TEST(Crc32, HardwareAndScalarPathsAgree)
{
    if (!crc32cHwAvailable())
        GTEST_SKIP() << "no SSE4.2 CRC on this machine/build";
    EXPECT_STREQ(crc32cBackendName(), "sse4.2");
    Rng rng(0xface);
    for (std::size_t n = 0; n <= 64; ++n) {
        std::vector<std::uint8_t> v(n);
        for (auto &b : v)
            b = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(crc32c(v), crc32cScalar(v)) << "length " << n;
        EXPECT_EQ(crc32c(v, 77), crc32cScalar(v, 77))
            << "seeded, length " << n;
    }
    std::vector<std::uint8_t> big(64 * 1024);
    for (auto &b : big)
        b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(crc32c(big), crc32cScalar(big));

    // The force-scalar knob swings the dispatcher itself.
    crc32cForceScalar(true);
    EXPECT_STREQ(crc32cBackendName(), "table");
    EXPECT_EQ(crc32c(big), crc32cScalar(big));
    crc32cForceScalar(false);
    EXPECT_STREQ(crc32cBackendName(), "sse4.2");
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        differs = differs || a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 10'000; ++i)
        hits += r.chance(1, 4);
    EXPECT_NEAR(hits, 2500, 200);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(5);
    Rng b = a.split();
    EXPECT_NE(a.next(), b.next());
}

TEST(Bytes, VarintRoundTripsEdgeValues)
{
    ByteWriter w;
    const std::uint64_t values[] = {0,
                                    1,
                                    127,
                                    128,
                                    16383,
                                    16384,
                                    ~std::uint64_t{0},
                                    0x8000000000000000ull};
    for (std::uint64_t v : values)
        w.varu(v);
    ByteReader r(w.data());
    for (std::uint64_t v : values)
        EXPECT_EQ(r.varu(), v);
    EXPECT_TRUE(r.atEnd());
}

TEST(Bytes, SignedVarintRoundTrips)
{
    ByteWriter w;
    const std::int64_t values[] = {0, -1, 1, -64, 63,
                                   std::int64_t{1} << 62,
                                   -(std::int64_t{1} << 62)};
    for (std::int64_t v : values)
        w.vari(v);
    ByteReader r(w.data());
    for (std::int64_t v : values)
        EXPECT_EQ(r.vari(), v);
}

TEST(Bytes, VarintIsCompactForSmallValues)
{
    ByteWriter w;
    for (std::uint64_t v = 0; v < 128; ++v)
        w.varu(v);
    EXPECT_EQ(w.size(), 128u) << "one byte per value below 128";
}

TEST(Bytes, BlobAndStringRoundTrip)
{
    ByteWriter w;
    std::vector<std::uint8_t> blob{1, 2, 3, 255};
    w.blob(blob);
    w.str("hello");
    w.u64fixed(0x1122334455667788ull);
    ByteReader r(w.data());
    EXPECT_EQ(r.blob(), blob);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.u64fixed(), 0x1122334455667788ull);
}

TEST(Stats, RunningStatBasics)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.add(4.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 7.0 / 3.0);
    EXPECT_DOUBLE_EQ(s.geomean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Stats, PercentilesNearestRank)
{
    Percentiles p;
    for (int i = 1; i <= 100; ++i)
        p.add(i);
    EXPECT_NEAR(p.at(50), 50, 1);
    EXPECT_NEAR(p.at(99), 99, 1);
    EXPECT_DOUBLE_EQ(p.at(0), 1);
    EXPECT_DOUBLE_EQ(p.at(100), 100);
}

TEST(Table, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, NumberFormatters)
{
    EXPECT_EQ(Table::num(std::uint64_t{1234567}), "1,234,567");
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.153, 1), "15.3%");
    EXPECT_EQ(Table::bytes(512), "512 B");
    EXPECT_EQ(Table::bytes(2048), "2.0 KiB");
    EXPECT_EQ(Table::bytes(3u << 20), "3.0 MiB");
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

} // namespace
} // namespace dp
