/**
 * @file
 * M1-M3 — google-benchmark microbenchmarks of the substrate:
 * interpreter throughput, CoW memory operations, state hashing, and
 * log codec speed. These bound how much guest work the experiment
 * harness can simulate per host second.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "bench_common.hh"
#include "common/bytes.hh"
#include "common/crc32.hh"
#include "common/hash.hh"
#include "common/rng.hh"
#include "log/logs.hh"
#include "mem/paged_memory.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "vm/assembler.hh"
#include "vm/interp.hh"

namespace
{

using namespace dp;

std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.next());
    return v;
}

GuestProgram
arithProgram(std::int64_t iters)
{
    using enum Reg;
    Assembler a;
    a.li(r10, iters);
    a.li(r11, 0x9e3779b9);
    a.li(r12, 1);
    Label loop = a.hereLabel();
    Label done = a.newLabel();
    a.beqz(r10, done);
    a.mul(r12, r12, r11);
    a.xor_(r12, r12, r10);
    a.shri(r13, r12, 13);
    a.add(r12, r12, r13);
    a.addi(r10, r10, -1);
    a.jmp(loop);
    a.bind(done);
    a.li(r1, 0);
    a.sys(Sys::Exit);
    return a.finish("bench_arith");
}

void
BM_InterpreterArith(benchmark::State &state)
{
    GuestProgram prog = arithProgram(state.range(0));
    std::uint64_t instrs = 0;
    for (auto _ : state) {
        Machine m(prog, {});
        SimOS os;
        UniRunner runner(m, os, {}, {});
        StopReason r = runner.run();
        if (r != StopReason::AllExited)
            state.SkipWithError("guest did not finish");
        instrs += runner.stats().instrs;
    }
    state.counters["instrs/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterArith)->Arg(10'000)->Arg(100'000);

void
BM_MemoryWrite64(benchmark::State &state)
{
    PagedMemory mem;
    std::uint64_t addr = 0;
    for (auto _ : state) {
        mem.write64(addr & 0xfffff, addr);
        addr += 8;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryWrite64);

void
BM_MemoryRead64(benchmark::State &state)
{
    PagedMemory mem;
    for (std::uint64_t a = 0; a < (1u << 20); a += 8)
        mem.write64(a, a);
    std::uint64_t addr = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink ^= mem.read64(addr & 0xfffff);
        addr += 8;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryRead64);

void
BM_SnapshotCow(benchmark::State &state)
{
    const std::int64_t dirty = state.range(0);
    PagedMemory mem;
    for (std::uint64_t pg = 0; pg < 4096; ++pg)
        mem.write64(pg * Page::bytes, pg);
    MemSnapshot snap = mem.snapshot();
    for (auto _ : state) {
        for (std::int64_t k = 0; k < dirty; ++k)
            mem.write64((k % 4096) * Page::bytes, k);
        benchmark::DoNotOptimize(mem.snapshot());
    }
    state.SetItemsProcessed(state.iterations() * dirty);
}
BENCHMARK(BM_SnapshotCow)->Arg(64)->Arg(1024);

void
BM_StateHash(benchmark::State &state)
{
    PagedMemory mem;
    for (std::uint64_t a = 0; a < (1u << 22); a += 64)
        mem.write64(a, a * 0x9e3779b9);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.hash());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(
                                mem.residentPages() * Page::bytes));
}
BENCHMARK(BM_StateHash);

void
BM_PageHashWide(benchmark::State &state)
{
    // The page-hash kernel exactly as Page::computeHash runs it: the
    // 8-lane unrolled wideHash64 over one 4 KiB page.
    std::vector<std::uint8_t> page = randomBytes(Page::bytes, 0xbe9c);
    for (auto _ : state)
        benchmark::DoNotOptimize(wideHash64(page));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(page.size()));
}
BENCHMARK(BM_PageHashWide);

void
BM_PageHashSerial(benchmark::State &state)
{
    // Baseline: the serial byte-at-a-time fastHash64 that page
    // hashing used before the wide kernel.
    std::vector<std::uint8_t> page = randomBytes(Page::bytes, 0xbe9c);
    for (auto _ : state)
        benchmark::DoNotOptimize(fastHash64(page));
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(page.size()));
}
BENCHMARK(BM_PageHashSerial);

void
BM_Crc32cHw(benchmark::State &state)
{
    if (!crc32cHwAvailable()) {
        state.SkipWithError("no SSE4.2 CRC on this machine/build");
        return;
    }
    std::vector<std::uint8_t> buf = randomBytes(64 * 1024, 0xc4c);
    std::uint32_t c = 0;
    for (auto _ : state) {
        c = crc32c(buf, c);
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Crc32cHw);

void
BM_Crc32cTable(benchmark::State &state)
{
    std::vector<std::uint8_t> buf = randomBytes(64 * 1024, 0xc4c);
    std::uint32_t c = 0;
    for (auto _ : state) {
        c = crc32cScalar(buf, c);
        benchmark::DoNotOptimize(c);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_Crc32cTable);

void
BM_ScheduleLogRoundTrip(benchmark::State &state)
{
    ScheduleLog log;
    for (std::uint32_t i = 0; i < 10'000; ++i)
        log.append({i % 8, 1000 + i % 97, (i % 13) == 0});
    for (auto _ : state) {
        std::vector<std::uint8_t> bytes = log.encode();
        ScheduleLog back = ScheduleLog::decode(bytes);
        benchmark::DoNotOptimize(back.size());
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_ScheduleLogRoundTrip);

void
BM_VarintEncode(benchmark::State &state)
{
    for (auto _ : state) {
        ByteWriter w;
        for (std::uint64_t i = 0; i < 4096; ++i)
            w.varu(i * 0x9e3779b97f4a7c15ull >> (i % 48));
        benchmark::DoNotOptimize(w.size());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_VarintEncode);

/** Best-of-@p reps wall time of @p fn, in seconds. */
template <typename Fn>
double
bestSeconds(Fn &&fn, int reps = 3)
{
    using Clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        const Clock::time_point t0 = Clock::now();
        fn();
        const Clock::time_point t1 = Clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/**
 * Self-timed kernel rows for BENCH_micro.json, so the dispatch and
 * hashing speedups are machine-diffable across builds (the threaded
 * vs switch and sse4.2 vs table configurations land under different
 * row names). Kernel rows reuse the dp-bench-v1 fields: `overhead`
 * carries throughput in units/s (instrs/s for dispatch, bytes/s for
 * hashing), `logBytes` the work per measurement, `epochs` the
 * repetition count.
 */
std::vector<bench::BenchResult>
kernelRows()
{
    std::vector<bench::BenchResult> rows;
    const auto row = [&rows](std::string name, double unitsPerSec,
                             std::uint64_t work, std::uint64_t reps) {
        bench::BenchResult r;
        r.name = std::move(name);
        r.workload = "kernel";
        r.workers = 1;
        r.overhead = unitsPerSec;
        r.logBytes = work;
        r.epochs = reps;
        rows.push_back(std::move(r));
    };

    // Dispatch: guest instructions retired per host second through
    // the full UniRunner slice loop (block dispatch included).
    {
        GuestProgram prog = arithProgram(400'000);
        std::uint64_t instrs = 0;
        const double secs = bestSeconds([&] {
            Machine mach(prog, {});
            SimOS os;
            UniRunner runner(mach, os, {}, {});
            if (runner.run() != StopReason::AllExited)
                std::abort();
            instrs = runner.stats().instrs;
        });
        row(std::string("dispatch-") +
                Interpreter::dispatchKindName(),
            static_cast<double>(instrs) / secs, instrs, 1);
    }

    // Page hashing: bytes per second over a resident 4 KiB page.
    const std::vector<std::uint8_t> page =
        randomBytes(Page::bytes, 0xbe9c);
    constexpr int hashReps = 4096;
    const auto hashRow = [&](const char *name, auto &&hash) {
        const double secs = bestSeconds([&] {
            std::uint64_t sink = 0;
            for (int i = 0; i < hashReps; ++i)
                sink ^= hash(page);
            benchmark::DoNotOptimize(sink);
        });
        row(name,
            static_cast<double>(hashReps) * page.size() / secs,
            std::uint64_t{hashReps} * page.size(), hashReps);
    };
    hashRow("pagehash-wide", [](std::span<const std::uint8_t> b) {
        return wideHash64(b);
    });
    hashRow("pagehash-serial", [](std::span<const std::uint8_t> b) {
        return fastHash64(b);
    });

    // CRC-32C: the journal-frame checksum, hardware vs table.
    const std::vector<std::uint8_t> buf =
        randomBytes(64 * 1024, 0xc4c);
    constexpr int crcReps = 64;
    const auto crcRow = [&](const char *name, auto &&crc) {
        const double secs = bestSeconds([&] {
            std::uint32_t c = 0;
            for (int i = 0; i < crcReps; ++i)
                c = crc(buf, c);
            benchmark::DoNotOptimize(c);
        });
        row(name, static_cast<double>(crcReps) * buf.size() / secs,
            std::uint64_t{crcReps} * buf.size(), crcReps);
    };
    if (crc32cHwAvailable())
        crcRow("crc32c-sse4.2",
               [](std::span<const std::uint8_t> b, std::uint32_t s) {
                   return crc32c(b, s);
               });
    crcRow("crc32c-table",
           [](std::span<const std::uint8_t> b, std::uint32_t s) {
               return crc32cScalar(b, s);
           });
    return rows;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dp;
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();

    // Machine-readable summary row: one quick end-to-end record
    // measurement, so every bench run leaves a BENCH_*.json behind
    // (see bench_common.hh for the schema).
    const workloads::Workload *w = workloads::findWorkload("pfscan");
    if (!w) {
        std::cerr << "pfscan workload missing\n";
        return 1;
    }
    harness::MeasureOptions mo;
    mo.threads = 2;
    mo.totalCpus = 4;
    mo.scale = 4;
    mo.epochLength = 100'000;
    harness::Measurement m = harness::measure(*w, mo);
    if (!m.recordOk) {
        std::cerr << "record failed for " << w->name << "\n";
        return 1;
    }
    std::vector<bench::BenchResult> rows{bench::toBenchResult(m)};
    for (bench::BenchResult &r : kernelRows())
        rows.push_back(std::move(r));
    if (!bench::emitBenchJson("micro", rows))
        return 1;
    return 0;
}
