#include "replay/live_replica.hh"

#include "common/logging.hh"
#include "replay/replayer.hh"

namespace dp
{

bool
LiveReplica::apply(const EpochRecord &epoch)
{
    if (!healthy_) {
        dp_warn("apply on an unhealthy replica ignored");
        return false;
    }
    if (!replayEpochOnMachine(machine_, epoch, costs_, cycles_,
                              instrs_)) {
        healthy_ = false;
        return false;
    }
    ++applied_;
    return true;
}

} // namespace dp
