/**
 * @file
 * Pipe-structured compression workload: the real pbzip2's
 * reader -> compressor pool -> writer architecture, built on the
 * simulated kernel's blocking pipes.
 */

#include "workloads/factories.hh"

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

WorkloadBundle
makePbzip2Pipe(std::uint32_t threads, std::uint32_t scale,
               std::uint64_t seed)
{
    const std::uint64_t block = 1024;
    const std::uint64_t nblocks = 32ull * scale;
    constexpr std::int64_t workPipe = 1;
    constexpr std::int64_t resultPipe = 2;

    std::vector<std::uint8_t> input =
        makeInputBytes(nblocks * block, seed, true);

    Assembler a;
    Label reader = a.newLabel();
    Label compressor = a.newLabel();
    Label writer = a.newLabel();
    a.dataBytes(wlInput, input);

    // ---- main: spawn reader + compressors + writer, join all ----
    lib::spawnThread(a, reader, r5);
    a.lia(r3, wlTidArray);
    a.st64(r3, 0, r0);
    a.li(r14, 0);
    a.li(r15, static_cast<std::int64_t>(threads));
    Label spawn_loop = a.hereLabel();
    Label spawned = a.newLabel();
    a.bgeu(r14, r15, spawned);
    lib::spawnThread(a, compressor, r14);
    a.addi(r3, r14, 1);
    a.shli(r3, r3, 3);
    a.lia(r4, wlTidArray);
    a.add(r3, r3, r4);
    a.st64(r3, 0, r0);
    a.addi(r14, r14, 1);
    a.jmp(spawn_loop);
    a.bind(spawned);
    lib::spawnThread(a, writer, r5);
    a.addi(r3, r15, 1);
    a.shli(r3, r3, 3);
    a.lia(r4, wlTidArray);
    a.add(r3, r3, r4);
    a.st64(r3, 0, r0);

    a.li(r14, 0);
    a.addi(r15, r15, 2); // reader + compressors + writer
    Label join_loop = a.hereLabel();
    Label joined = a.newLabel();
    a.bgeu(r14, r15, joined);
    a.shli(r3, r14, 3);
    a.lia(r4, wlTidArray);
    a.add(r3, r3, r4);
    a.ld64(r4, r3, 0);
    lib::joinThread(a, r4);
    a.addi(r14, r14, 1);
    a.jmp(join_loop);
    a.bind(joined);
    emitWriteGlobalAndExit(a, gResult);

    // ---- reader: feed block indices into the work pipe, close ----
    a.bind(reader);
    a.li(r8, 0);
    a.li(r9, static_cast<std::int64_t>(nblocks));
    Label feed = a.hereLabel();
    Label fed = a.newLabel();
    a.bgeu(r8, r9, fed);
    a.lia(r4, wlGlobals + 0x600);
    a.st64(r4, 0, r8);
    a.li(r1, workPipe);
    a.mov(r2, r4);
    a.li(r3, 8);
    a.sys(Sys::PipeWrite);
    a.addi(r8, r8, 1);
    a.jmp(feed);
    a.bind(fed);
    a.li(r1, workPipe);
    a.sys(Sys::PipeClose);
    lib::exitWith(a, 0);

    // ---- compressor: pull indices, compress, push lengths ----
    a.bind(compressor);
    a.mov(r6, r1); // my index (kept in r6; RLE spares it)
    emitThreadBase(a, r6, r7); // private 8-byte read buffer in r7
    Label take = a.hereLabel();
    Label no_more = a.newLabel();
    a.li(r1, workPipe);
    a.mov(r2, r7);
    a.li(r3, 8);
    a.sys(Sys::PipeRead);
    a.beqz(r0, no_more); // EOF: reader closed the pipe
    a.ld64(r4, r7, 0);   // block index
    a.muli(r10, r4, static_cast<std::int64_t>(block));
    a.addi(r10, r10, static_cast<std::int64_t>(wlInput));
    a.muli(r11, r4, static_cast<std::int64_t>(2 * block));
    a.addi(r11, r11, static_cast<std::int64_t>(wlOutput));
    emitRleBlock(a, block); // r15 = compressed length
    a.st64(r7, 0, r15);
    a.li(r1, resultPipe);
    a.mov(r2, r7);
    a.li(r3, 8);
    a.sys(Sys::PipeWrite);
    a.jmp(take);
    a.bind(no_more);
    lib::exitWith(a, 0);

    // ---- writer: drain exactly nblocks results into the total ----
    a.bind(writer);
    a.li(r8, 0);
    a.li(r9, static_cast<std::int64_t>(nblocks));
    a.li(r10, 0); // running total
    a.lia(r11, wlGlobals + 0x700);
    Label drain = a.hereLabel();
    Label drained = a.newLabel();
    a.bgeu(r8, r9, drained);
    a.li(r1, resultPipe);
    a.mov(r2, r11);
    a.li(r3, 8);
    a.sys(Sys::PipeRead);
    a.ld64(r4, r11, 0);
    a.add(r10, r10, r4);
    a.addi(r8, r8, 1);
    a.jmp(drain);
    a.bind(drained);
    a.lia(r5, wlGlobals + gResult);
    a.fetchAdd(r4, r5, r10);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("pbzip2_pipe"), {},
                     rleLength(input, block)};
    return b;
}

} // namespace dp::workloads
