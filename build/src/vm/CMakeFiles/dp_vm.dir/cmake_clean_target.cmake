file(REMOVE_RECURSE
  "libdp_vm.a"
)
