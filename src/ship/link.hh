/**
 * @file
 * ShipLink: the fault-injectable in-process link between a ShipSender
 * and a StandbyApplier.
 *
 * transmit() carries one wire batch to the standby and returns its
 * ack — unless the link's fault sites intervene. Every link failure
 * mode is a seeded FaultSite decision with scope = the batch's
 * sequence number, so a failing shipping session replays exactly from
 * its seed:
 *
 *   LinkDrop       — the batch vanishes; the sender sees a timeout.
 *   LinkDuplicate  — the batch is delivered twice back to back.
 *   LinkReorder    — the batch is held and delivered after the next
 *                    one that crosses the link (at most one held).
 *   LinkTornBatch  — the batch is truncated mid-flight at a
 *                    deterministic cut; its CRC fails at the standby.
 *   LinkDisconnect — the link goes down, losing any held batch, until
 *                    the sender reconnect()s.
 *   StandbyCrash   — consulted by the *standby* inside receive();
 *                    listed here because it rides the same scope.
 *
 * The decision order per transmit (disconnect, drop, reorder, torn,
 * duplicate) is fixed, so the fault stream is deterministic for a
 * fixed plan and seed regardless of timing.
 */

#ifndef DP_SHIP_LINK_HH
#define DP_SHIP_LINK_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fault/fault.hh"
#include "ship/ship.hh"

namespace dp
{

class StandbyApplier;

/** See file comment. */
class ShipLink
{
  public:
    explicit ShipLink(StandbyApplier &standby,
                      FaultInjector *faults = nullptr)
        : standby_(standby), faults_(faults)
    {}

    /**
     * Carry one wire batch across the link. Returns the standby's ack
     * — the *last* ack the standby produced if fault sites caused
     * extra deliveries (a duplicate or a released held batch), so the
     * watermarks the sender adopts are always the freshest. nullopt
     * means the sender sees a timeout: the batch (or the link) was
     * lost.
     */
    std::optional<ShipAck>
    transmit(std::span<const std::uint8_t> wire, std::uint64_t scope);

    /** The link is down; transmit() fails until reconnect(). */
    bool down() const { return down_; }
    /** Re-establish a dropped link. */
    void reconnect() { down_ = false; }

    const LinkStats &stats() const { return stats_; }

  private:
    bool fire(FaultSite site, std::uint64_t scope);

    StandbyApplier &standby_;
    FaultInjector *faults_;
    bool down_ = false;
    /** The batch LinkReorder is holding for late delivery. */
    std::optional<std::vector<std::uint8_t>> held_;
    LinkStats stats_;
};

} // namespace dp

#endif // DP_SHIP_LINK_HH
