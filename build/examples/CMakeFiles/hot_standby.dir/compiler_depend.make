# Empty compiler generated dependencies file for hot_standby.
# This may be replaced when dependencies are built.
