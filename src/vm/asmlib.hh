/**
 * @file
 * Guest "standard library": synchronization and OS-call idioms emitted
 * as instruction sequences.
 *
 * These are the guest-side equivalents of the pthread/libc operations
 * DoublePlay intercepts. Every cross-thread ordering they create flows
 * through atomic instructions (Cas/FetchAdd/Xchg), which is what makes
 * sync-order logging sufficient for data-race-free programs.
 *
 * Register convention: all helpers may clobber r0, r1, r2 (the syscall
 * registers) plus any scratch registers they take. Workload code keeps
 * long-lived values in r5..r15.
 */

#ifndef DP_VM_ASMLIB_HH
#define DP_VM_ASMLIB_HH

#include <cstdint>

#include "common/types.hh"
#include "vm/assembler.hh"

namespace dp::asmlib
{

/**
 * Acquire the two-state futex lock whose word is at address in
 * @p lock_addr. Spins once via CAS, then parks on the futex.
 * Clobbers r0, r1, r2, @p scratch.
 */
void lockAcquire(Assembler &a, Reg lock_addr, Reg scratch);

/**
 * Release the lock at address in @p lock_addr (atomic Xchg to 0, then
 * wake one waiter). Clobbers r0, r1, r2, @p scratch.
 */
void lockRelease(Assembler &a, Reg lock_addr, Reg scratch);

/**
 * Generation barrier. The barrier object is two u64 words at the
 * address in @p bar_addr: [arrival count][generation]. @p nthreads
 * holds the participant count. Clobbers r0, r1, r2, s1, s2.
 */
void barrierWait(Assembler &a, Reg bar_addr, Reg nthreads, Reg s1,
                 Reg s2);

/** exit(code) with an immediate code. Clobbers r0, r1. */
void exitWith(Assembler &a, std::uint64_t code);

/**
 * spawn(entry, arg): starts a thread at label @p entry with r1 = the
 * value in @p arg_reg. Thread id lands in r0. Clobbers r0, r1, r2.
 */
void spawnThread(Assembler &a, Label entry, Reg arg_reg);

/** join(tid in @p tid_reg); exit code lands in r0. Clobbers r0, r1. */
void joinThread(Assembler &a, Reg tid_reg);

/**
 * write(fd, buf, len) with buf/len taken from registers.
 * Clobbers r0, r1, r2, r3.
 */
void writeFd(Assembler &a, std::int64_t fd, Reg buf_reg, Reg len_reg);

} // namespace dp::asmlib

#endif // DP_VM_ASMLIB_HH
