#include "replay/recording_io.hh"

#include "common/bytes.hh"
#include "common/logging.hh"

namespace dp
{

namespace
{

constexpr std::uint32_t artifactMagic = 0x44504c59; // "DPLY"
constexpr std::uint32_t artifactVersion = 3; // v3: signal logs

void
writeProgram(ByteWriter &w, const GuestProgram &prog)
{
    w.str(prog.name);
    w.varu(prog.entry);
    w.varu(prog.code.size());
    for (const Instr &in : prog.code) {
        w.u8(static_cast<std::uint8_t>(in.op));
        w.u8(static_cast<std::uint8_t>(in.rd));
        w.u8(static_cast<std::uint8_t>(in.rs1));
        w.u8(static_cast<std::uint8_t>(in.rs2));
        w.vari(in.imm);
    }
    w.varu(prog.dataSegments.size());
    for (const auto &[base, bytes] : prog.dataSegments) {
        w.varu(base);
        w.blob(bytes);
    }
}

GuestProgram
readProgram(ByteReader &r)
{
    GuestProgram prog;
    prog.name = r.str();
    prog.entry = r.varu();
    std::uint64_t n = r.varu();
    prog.code.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Instr in;
        std::uint8_t op = r.u8();
        dp_assert(op < static_cast<std::uint8_t>(Opcode::NumOpcodes),
                  "artifact contains an invalid opcode");
        in.op = static_cast<Opcode>(op);
        in.rd = static_cast<Reg>(r.u8() & 15);
        in.rs1 = static_cast<Reg>(r.u8() & 15);
        in.rs2 = static_cast<Reg>(r.u8() & 15);
        in.imm = r.vari();
        prog.code.push_back(in);
    }
    std::uint64_t segs = r.varu();
    for (std::uint64_t i = 0; i < segs; ++i) {
        Addr base = r.varu();
        prog.dataSegments.emplace_back(base, r.blob());
    }
    return prog;
}

void
writeConfig(ByteWriter &w, const MachineConfig &cfg)
{
    w.varu(cfg.netSeed);
    w.varu(cfg.netBytesPerConn);
    w.varu(cfg.netCyclesPerByte);
    w.varu(cfg.initialFiles.size());
    for (const auto &[path, content] : cfg.initialFiles) {
        w.str(path);
        w.blob(content);
    }
}

MachineConfig
readConfig(ByteReader &r)
{
    MachineConfig cfg;
    cfg.netSeed = r.varu();
    cfg.netBytesPerConn = r.varu();
    cfg.netCyclesPerByte = r.varu();
    std::uint64_t n = r.varu();
    for (std::uint64_t i = 0; i < n; ++i) {
        std::string path = r.str();
        cfg.initialFiles.emplace_back(std::move(path), r.blob());
    }
    return cfg;
}

} // namespace

std::vector<std::uint8_t>
serializeRecording(const Recording &rec)
{
    ByteWriter w;
    w.u64fixed((std::uint64_t{artifactMagic} << 32) | artifactVersion);
    writeProgram(w, rec.program());
    writeConfig(w, rec.config());

    w.varu(rec.epochs.size());
    for (const EpochRecord &e : rec.epochs) {
        w.blob(e.schedule.encode());
        w.blob(e.syscalls.encode());
        w.blob(e.signals.encode());
        w.u64fixed(e.endStateHash);
        w.varu(e.stdoutLen);
        w.u8(e.diverged ? 1 : 0);
        w.varu(e.tpCycles);
        w.varu(e.epCycles);
        w.varu(e.ckptCycles);
        w.varu(e.epInstrs);
        w.varu(e.targets.size());
        for (const EpochTarget &t : e.targets) {
            w.varu(t.retired);
            w.u8(static_cast<std::uint8_t>(t.endState));
        }
    }
    w.u64fixed(rec.finalStateHash);
    w.varu(rec.stats.epochs);
    w.varu(rec.stats.rollbacks);
    w.varu(rec.stats.checkpointPages);
    return w.take();
}

LoadedRecording
deserializeRecording(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    std::uint64_t header = r.u64fixed();
    dp_assert(header >> 32 == artifactMagic,
              "not a uniplay recording artifact");
    dp_assert((header & 0xffffffff) == artifactVersion,
              "unsupported artifact version ", header & 0xffffffff);

    LoadedRecording out;
    GuestProgram prog = readProgram(r);
    MachineConfig cfg = readConfig(r);
    out.recording = std::make_unique<Recording>(prog, std::move(cfg));

    std::uint64_t n = r.varu();
    out.recording->epochs.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        EpochRecord e;
        std::vector<std::uint8_t> sched = r.blob();
        e.schedule = ScheduleLog::decode(sched);
        std::vector<std::uint8_t> sys = r.blob();
        e.syscalls = SyscallLog::decode(sys);
        std::vector<std::uint8_t> sigs = r.blob();
        e.signals = SignalLog::decode(sigs);
        e.endStateHash = r.u64fixed();
        e.stdoutLen = r.varu();
        e.diverged = r.u8() != 0;
        e.tpCycles = r.varu();
        e.epCycles = r.varu();
        e.ckptCycles = r.varu();
        e.epInstrs = r.varu();
        std::uint64_t targets = r.varu();
        for (std::uint64_t t = 0; t < targets; ++t) {
            EpochTarget tgt;
            tgt.retired = r.varu();
            tgt.endState = static_cast<RunState>(r.u8());
            e.targets.push_back(tgt);
        }
        out.recording->epochs.push_back(std::move(e));
    }
    out.recording->finalStateHash = r.u64fixed();
    out.recording->stats.epochs =
        static_cast<std::uint32_t>(r.varu());
    out.recording->stats.rollbacks =
        static_cast<std::uint32_t>(r.varu());
    out.recording->stats.checkpointPages = r.varu();
    dp_assert(r.atEnd(), "trailing bytes in recording artifact");
    return out;
}

} // namespace dp
