/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every source of nondeterminism in the simulator (multiprocessor
 * interleaving jitter, workload input generation, property-test program
 * generation) draws from an explicitly seeded Rng so runs are exactly
 * reproducible from their seed.
 */

#ifndef DP_COMMON_RNG_HH
#define DP_COMMON_RNG_HH

#include <array>
#include <cstdint>

#include "common/hash.hh"
#include "common/logging.hh"

namespace dp
{

/** xoshiro256** generator with splitmix64 seeding; value semantics. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 1)
    {
        // splitmix64 stream seeds the four state words.
        std::uint64_t x = seed;
        for (auto &w : s_) {
            x += 0x9e3779b97f4a7c15ull;
            w = mix64(x);
        }
        if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0)
            s_[0] = 1;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        dp_assert(bound > 0, "Rng::below requires a positive bound");
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t v = next();
            if (v >= threshold)
                return v % bound;
        }
    }

    /** Uniform value in the inclusive range [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        dp_assert(lo <= hi, "Rng::range requires lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Derive an independent generator (for per-component streams). */
    Rng
    split()
    {
        return Rng(next() ^ 0xa0761d6478bd642full);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> s_;
};

} // namespace dp

#endif // DP_COMMON_RNG_HH
