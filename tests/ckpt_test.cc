/**
 * @file
 * Unit tests for whole-machine checkpoints: capture/materialize
 * round trips, CoW sharing, and mid-execution resume.
 */

#include <gtest/gtest.h>

#include "ckpt/checkpoint.hh"
#include "os/simos.hh"
#include "os/uni_runner.hh"
#include "testprogs.hh"

namespace dp
{
namespace
{

TEST(Checkpoint, CaptureMaterializeRoundTrip)
{
    GuestProgram prog = testprogs::lockedCounter(2, 50);
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.fuel = 500;
    UniRunner r(m, os, opts, {});
    ASSERT_EQ(r.run(), StopReason::FuelExhausted);

    Checkpoint c = Checkpoint::capture(m);
    EXPECT_EQ(c.stateHash(), m.stateHash());
    Machine copy = c.materialize(prog, {});
    EXPECT_EQ(copy.stateHash(), m.stateHash());
    EXPECT_EQ(copy.now, m.now);
    EXPECT_EQ(copy.threads.size(), m.threads.size());
}

TEST(Checkpoint, MaterializedMachineRunsToSameResult)
{
    GuestProgram prog = testprogs::lockedCounter(2, 100);
    Machine m(prog, {});
    SimOS os;
    UniOptions opts;
    opts.fuel = 1'000;
    {
        UniRunner r(m, os, opts, {});
        ASSERT_EQ(r.run(), StopReason::FuelExhausted);
    }
    Checkpoint c = Checkpoint::capture(m);

    // Finish both the original and the materialized copy.
    {
        UniRunner r(m, os, {}, {});
        ASSERT_EQ(r.run(), StopReason::AllExited);
    }
    Machine copy = c.materialize(prog, {});
    {
        UniRunner r(copy, os, {}, {});
        ASSERT_EQ(r.run(), StopReason::AllExited);
    }
    EXPECT_EQ(copy.stateHash(), m.stateHash());
    EXPECT_EQ(copy.threads[0].exitCode, 200u);
}

TEST(Checkpoint, DivergingCopiesStayIsolated)
{
    GuestProgram prog = testprogs::arithLoop(100);
    Machine m(prog, {});
    Checkpoint c = Checkpoint::capture(m);

    Machine a = c.materialize(prog, {});
    Machine b = c.materialize(prog, {});
    a.mem.write64(0x9000, 1);
    b.mem.write64(0x9000, 2);
    EXPECT_EQ(m.mem.read64(0x9000), 0u);
    EXPECT_EQ(a.mem.read64(0x9000), 1u);
    EXPECT_EQ(b.mem.read64(0x9000), 2u);
}

TEST(Checkpoint, RestoreIntoRollsBack)
{
    GuestProgram prog = testprogs::arithLoop(1'000);
    Machine m(prog, {});
    SimOS os;
    Checkpoint c = Checkpoint::capture(m);
    std::uint64_t initial = c.stateHash();

    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    EXPECT_NE(m.stateHash(), initial);

    c.restoreInto(m);
    EXPECT_EQ(m.stateHash(), initial);
    EXPECT_EQ(m.threads[0].state, RunState::Runnable);

    // And the rolled-back machine re-executes normally.
    UniRunner r2(m, os, {}, {});
    ASSERT_EQ(r2.run(), StopReason::AllExited);
}

TEST(Checkpoint, CapturesBlockedThreadsAndWaitQueues)
{
    GuestProgram prog = testprogs::lockedCounter(3, 200);
    Machine m(prog, {});
    SimOS os;
    // Fine timeslicing with a fuel bound: main join-blocks within its
    // second slice while the workers (3200 instrs each) are mid-loop,
    // so the snapshot is guaranteed to contain a blocked thread.
    UniOptions opts;
    opts.quantum = 50;
    opts.fuel = 600;
    UniRunner r(m, os, opts, {});
    ASSERT_EQ(r.run(), StopReason::FuelExhausted);

    bool any_blocked = false;
    for (const auto &t : m.threads)
        any_blocked = any_blocked || t.state == RunState::Blocked;
    ASSERT_TRUE(any_blocked)
        << "main must be join-blocked at the fuel bound";

    Checkpoint c = Checkpoint::capture(m);
    Machine copy = c.materialize(prog, {});
    EXPECT_EQ(copy.os.futexQueues, m.os.futexQueues);
    EXPECT_EQ(copy.os.joinWaiters, m.os.joinWaiters);

    // The copy must run to completion: wait queues were preserved so
    // wakes still reach their sleepers.
    UniRunner rc(copy, os, {}, {});
    EXPECT_EQ(rc.run(), StopReason::AllExited);
    EXPECT_EQ(copy.threads[0].exitCode, 600u);
}

TEST(Checkpoint, ResidentPagesReported)
{
    GuestProgram prog = testprogs::lockedCounter(2, 10);
    Machine m(prog, {});
    SimOS os;
    UniRunner r(m, os, {}, {});
    ASSERT_EQ(r.run(), StopReason::AllExited);
    Checkpoint c = Checkpoint::capture(m);
    EXPECT_EQ(c.residentPages(), m.mem.residentPages());
    EXPECT_GT(c.residentPages(), 0u);
}

} // namespace
} // namespace dp
