/**
 * @file
 * Tests for the experiment harness: measurement plumbing, overhead
 * math, determinism of measured numbers, and baseline comparisons.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace dp
{
namespace
{

using harness::measure;
using harness::MeasureOptions;
using harness::Measurement;

MeasureOptions
smallOptions(std::uint32_t threads = 2)
{
    MeasureOptions o;
    o.threads = threads;
    o.totalCpus = 2 * threads;
    o.scale = 2;
    o.epochLength = 50'000;
    return o;
}

TEST(Harness, MeasureProducesConsistentNumbers)
{
    const workloads::Workload *w = workloads::findWorkload("fft");
    Measurement m = measure(*w, smallOptions());
    ASSERT_TRUE(m.recordOk);
    EXPECT_EQ(m.native.reason, StopReason::AllExited);
    EXPECT_GT(m.native.cycles, 0u);
    EXPECT_GT(m.pipeline.completion, m.native.cycles)
        << "recording cannot be free";
    EXPECT_DOUBLE_EQ(m.slowdown, m.overhead + 1.0);
    EXPECT_GT(m.epochs, 0u);
    EXPECT_GT(m.scheduleBytes, 0u);
    EXPECT_GE(m.syscallBytes, m.injectableBytes);
    EXPECT_EQ(m.replayLogBytes,
              m.scheduleBytes + m.injectableBytes + m.signalBytes);
}

TEST(Harness, MeasurementsAreDeterministic)
{
    const workloads::Workload *w = workloads::findWorkload("radix");
    Measurement a = measure(*w, smallOptions());
    Measurement b = measure(*w, smallOptions());
    ASSERT_TRUE(a.recordOk);
    ASSERT_TRUE(b.recordOk);
    EXPECT_EQ(a.native.cycles, b.native.cycles);
    EXPECT_EQ(a.pipeline.completion, b.pipeline.completion);
    EXPECT_EQ(a.replayLogBytes, b.replayLogBytes);
    EXPECT_DOUBLE_EQ(a.overhead, b.overhead);
}

TEST(Harness, NoSpareCoresCostsMore)
{
    const workloads::Workload *w = workloads::findWorkload("ocean");
    MeasureOptions spare = smallOptions();
    MeasureOptions cramped = spare;
    cramped.totalCpus = cramped.threads;
    Measurement ms = measure(*w, spare);
    Measurement mc = measure(*w, cramped);
    ASSERT_TRUE(ms.recordOk);
    ASSERT_TRUE(mc.recordOk);
    EXPECT_GT(mc.overhead, ms.overhead);
}

TEST(Harness, MeasureWithReplayFillsReplayFields)
{
    const workloads::Workload *w = workloads::findWorkload("water");
    Measurement m = harness::measureWithReplay(*w, smallOptions());
    ASSERT_TRUE(m.recordOk);
    EXPECT_TRUE(m.replayOk);
    EXPECT_GT(m.seqReplayCycles, m.native.cycles)
        << "sequential replay serializes the threads";
    EXPECT_LT(m.parReplayCycles, m.seqReplayCycles);
}

TEST(Harness, BaselinesAreMoreExpensiveThanDoublePlay)
{
    // mysql shares its whole table, so both the CREW fault rate and
    // the shared-load value log are substantial (pfscan-style
    // thread-local scans would make the value log trivially small).
    const workloads::Workload *w = workloads::findWorkload("mysql");
    MeasureOptions o = smallOptions();
    Measurement dp_m = measure(*w, o);
    harness::BaselineMeasurement bm =
        harness::measureBaselines(*w, o);
    ASSERT_TRUE(dp_m.recordOk);
    EXPECT_GT(bm.crewOverhead, dp_m.overhead)
        << "CREW page faulting must dominate uniparallel logging";
    EXPECT_GT(bm.crewLogBytes, dp_m.replayLogBytes);
    EXPECT_GT(bm.valueLogBytes, dp_m.replayLogBytes);
}

TEST(Harness, MeasureRespectsAblationFlag)
{
    const workloads::Workload *w = workloads::findWorkload("mysql");
    MeasureOptions on = smallOptions();
    MeasureOptions off = on;
    off.enforceSyncOrder = false;
    Measurement m_on = measure(*w, on);
    Measurement m_off = measure(*w, off);
    ASSERT_TRUE(m_on.recordOk);
    ASSERT_TRUE(m_off.recordOk);
    EXPECT_EQ(m_on.stats.rollbacks, 0u);
    EXPECT_GT(m_off.stats.rollbacks, 0u)
        << "without enforcement, lock order diverges";
}

} // namespace
} // namespace dp
