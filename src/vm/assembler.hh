/**
 * @file
 * In-C++ builder DSL for authoring guest programs.
 *
 * Workloads construct programs by calling one method per instruction;
 * labels provide forward references that finish() resolves. The DSL is
 * deliberately thin — richer idioms (locks, barriers) live in
 * vm/asmlib.hh on top of it.
 */

#ifndef DP_VM_ASSEMBLER_HH
#define DP_VM_ASSEMBLER_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hh"
#include "vm/abi.hh"
#include "vm/isa.hh"
#include "vm/program.hh"

namespace dp
{

/** Forward-referenceable code position. */
struct Label
{
    std::uint32_t id = ~std::uint32_t{0};
};

/** Single-pass assembler with label fixups. */
class Assembler
{
  public:
    /// @name Labels
    /// @{
    Label newLabel();
    /** Attach @p l to the next emitted instruction. */
    void bind(Label l);
    /** Convenience: newLabel() + bind(). */
    Label hereLabel();
    /// @}

    /// @name Instructions
    /// @{
    void nop();
    void li(Reg rd, std::int64_t imm);
    void lia(Reg rd, Addr a) { li(rd, static_cast<std::int64_t>(a)); }
    /** Load the code position of @p t (for spawn entry points). */
    void liLabel(Reg rd, Label t);
    void mov(Reg rd, Reg rs);

    void add(Reg rd, Reg a, Reg b);
    void sub(Reg rd, Reg a, Reg b);
    void mul(Reg rd, Reg a, Reg b);
    void divu(Reg rd, Reg a, Reg b);
    void remu(Reg rd, Reg a, Reg b);
    void and_(Reg rd, Reg a, Reg b);
    void or_(Reg rd, Reg a, Reg b);
    void xor_(Reg rd, Reg a, Reg b);
    void shl(Reg rd, Reg a, Reg b);
    void shr(Reg rd, Reg a, Reg b);
    void sar(Reg rd, Reg a, Reg b);
    void sltu(Reg rd, Reg a, Reg b);
    void slts(Reg rd, Reg a, Reg b);
    void seq(Reg rd, Reg a, Reg b);

    void addi(Reg rd, Reg a, std::int64_t imm);
    void andi(Reg rd, Reg a, std::int64_t imm);
    void ori(Reg rd, Reg a, std::int64_t imm);
    void xori(Reg rd, Reg a, std::int64_t imm);
    void shli(Reg rd, Reg a, std::int64_t imm);
    void shri(Reg rd, Reg a, std::int64_t imm);
    void muli(Reg rd, Reg a, std::int64_t imm);

    void ld8(Reg rd, Reg base, std::int64_t off = 0);
    void ld16(Reg rd, Reg base, std::int64_t off = 0);
    void ld32(Reg rd, Reg base, std::int64_t off = 0);
    void ld64(Reg rd, Reg base, std::int64_t off = 0);
    void st8(Reg base, std::int64_t off, Reg src);
    void st16(Reg base, std::int64_t off, Reg src);
    void st32(Reg base, std::int64_t off, Reg src);
    void st64(Reg base, std::int64_t off, Reg src);

    void beq(Reg a, Reg b, Label t);
    void bne(Reg a, Reg b, Label t);
    void bltu(Reg a, Reg b, Label t);
    void blts(Reg a, Reg b, Label t);
    void bgeu(Reg a, Reg b, Label t);
    void bges(Reg a, Reg b, Label t);
    void beqz(Reg a, Label t);
    void bnez(Reg a, Label t);
    void jmp(Label t);
    void jal(Reg rd, Label t);
    void jr(Reg rs);

    void cas(Reg rd_expected_old, Reg addr, Reg desired);
    void fetchAdd(Reg rd_old, Reg addr, Reg delta);
    void xchg(Reg rd_old, Reg addr, Reg val);

    void syscall();
    void halt();
    /// @}

    /** li(r0, number) + syscall — args must already be in r1..r5. */
    void sys(Sys s);

    /// @name Initial data image
    /// @{
    void dataBytes(Addr base, std::span<const std::uint8_t> bytes);
    void dataU64(Addr base, std::uint64_t value);
    void dataU64s(Addr base, std::span<const std::uint64_t> values);
    /// @}

    /** Entry point of the initial thread (defaults to index 0). */
    void setEntry(Label l);

    /** Current instruction count (next emission index). */
    std::size_t position() const { return code_.size(); }

    /** Resolve labels and produce the program. Panics on unbound
     *  labels that are referenced. */
    GuestProgram finish(std::string name);

  private:
    void emit(Opcode op, Reg rd, Reg rs1, Reg rs2, std::int64_t imm);
    void emitBranch(Opcode op, Reg rs1, Reg rs2, Label t);

    static constexpr std::int64_t unresolved = -1;

    std::vector<Instr> code_;
    /** labelId -> bound instruction index (or unresolved). */
    std::vector<std::int64_t> labelPos_;
    /** (instruction index, labelId) pairs awaiting resolution. */
    std::vector<std::pair<std::size_t, std::uint32_t>> fixups_;
    std::vector<std::pair<Addr, std::vector<std::uint8_t>>> data_;
    std::int64_t entryLabel_ = -1;
};

} // namespace dp

#endif // DP_VM_ASSEMBLER_HH
