/**
 * @file
 * Sharded epoch journal: N per-stream append-only logs with
 * partitioned parallel recovery.
 *
 * The single-stream journal (journal.hh) serializes every commit
 * through one CRC pipeline and recovers by scanning one image end to
 * end — the exact sequential-logging bottleneck DoublePlay's epoch
 * parallelism is supposed to remove. The sharded journal splits the
 * epoch stream round-robin across N stand-alone logs (epoch i lives
 * in stream i % N), each committed by its own strand on a shared
 * Executor, in the style of Taurus's per-worker log streams.
 *
 * Each stream is a self-describing journalVersion3 image reusing the
 * v2 frame envelope (frame.hh):
 *
 *   header payload := u64fixed((magic << 32) | 3)
 *                     | varu streamIndex | varu streamCount
 *                     | varu baseEpoch
 *                     | guestProgram | machineConfig
 *                     | u64fixed optionsFingerprint
 *   epoch payload  := varu epochIndex | varu streamSeq
 *                     | varu dirtyPages | varu tpInstrs
 *                     | epochRecord
 *
 * streamSeq = epochIndex / streamCount is the per-stream sequence
 * number: inside one stream it must be contiguous, and together with
 * epochIndex % streamCount == streamIndex it is the dependency
 * metadata that lets recovery rebuild the total epoch order from
 * independently-scanned shards. Everything after streamIndex in the
 * header payload is byte-identical across the streams of one journal
 * — recovery cross-checks it to catch mixed-up stream sets.
 *
 * Consistent-cut recovery rule: scan every stream independently
 * (envelope + CRC + sequence metadata, concurrently across streams),
 * then keep epochs [baseEpoch, E) where E is the smallest epoch index
 * missing from its owning stream's committed prefix. Frames beyond E
 * on other streams are discarded (fail-closed: the total order breaks
 * at the first hole), and reported as InconsistentCut when every
 * stream was individually clean. Decoding the kept epochs is then
 * partitioned across the exec pool — recovery wall-clock scales with
 * jobs, the result never does.
 *
 * With streams == 1 the writer delegates to JournalWriter and emits
 * byte-identical version-2 journals, and recoverShardedJournal
 * accepts a v2 image — the read-compat path.
 */

#ifndef DP_JOURNAL_SHARDED_HH
#define DP_JOURNAL_SHARDED_HH

#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "journal/journal.hh"

namespace dp
{

/** Shape of a sharded journal. */
struct ShardedJournalOptions
{
    /** Stream count N; 1 writes a plain version-2 journal. */
    unsigned streams = 1;
    /** Global epochs per segment (0 = one unbounded segment).
     *  truncateCoveredSegments() can only drop whole segments, so the
     *  retained base epoch is always a multiple of this. */
    std::uint64_t segmentEpochs = 0;
};

/**
 * Streams a sharded journal as a record session progresses. Epoch i
 * commits to stream i % N; wire appendEpoch() into
 * RecordObserver::onEpochCommitted exactly like JournalWriter.
 *
 * enableAsyncCommit() runs one committer strand per stream on a
 * shared Executor: commits to the same stream stay FIFO (the crash
 * guarantee), different streams commit concurrently — this is where
 * the commit-throughput scaling comes from. Stream bytes are
 * identical between synchronous and asynchronous modes.
 *
 * Per-stream fault sites (StreamCrash / StreamTornWrite /
 * StreamBitFlip, scope = epoch index) kill or corrupt one stream
 * while its siblings keep running, reproducing the partial-failure
 * shapes the cross-stream recovery tests pin.
 */
class ShardedJournalWriter
{
  public:
    /** Start a fresh sharded journal; every stream's header frame is
     *  emitted immediately. */
    ShardedJournalWriter(const GuestProgram &prog,
                         const MachineConfig &cfg,
                         std::uint64_t options_fingerprint,
                         ShardedJournalOptions opts = {},
                         FaultInjector *faults = nullptr);

    /**
     * Continue from recovered stream prefixes. @p valid_prefixes must
     * be the per-stream committed prefixes recoverShardedJournal()
     * validated, truncated to their keptBytes (for streams == 1, the
     * one v2 prefix recoverJournal() validated). The next epoch index
     * and per-stream sequence numbers are rederived by re-scanning
     * the prefixes, which are trusted to be valid. An empty prefix
     * (a stream whose bytes were entirely lost; keptBytes == 0) is
     * reborn as a fresh header-only stream, provided at least one
     * sibling survived to donate the shared header ingredients.
     */
    ShardedJournalWriter(
        std::vector<std::vector<std::uint8_t>> valid_prefixes,
        ShardedJournalOptions opts = {},
        FaultInjector *faults = nullptr);

    ShardedJournalWriter(const ShardedJournalWriter &) = delete;
    ShardedJournalWriter &
    operator=(const ShardedJournalWriter &) = delete;
    ~ShardedJournalWriter();

    /** Append epoch @p index's frame to its stream. Epochs must
     *  append in global commit order; appends to a dead stream are
     *  dropped, exactly as that stream's dead committer would drop
     *  them (its siblings are unaffected). */
    void appendEpoch(const EpochRecord &e, EpochId index);

    /** Switch to one committer strand per stream on a shared pool.
     *  Call before the first append; idempotent. */
    void enableAsyncCommit();

    /** Block until every handed-off append has committed (and
     *  streamed, if files are attached). */
    void flush() const;

    /** Stream count N. */
    unsigned streams() const { return streams_; }

    /** First epoch index the journal still carries (advanced by
     *  truncateCoveredSegments). */
    std::uint64_t baseEpoch() const { return base_; }

    /** False once any stream's fault site killed its committer. */
    bool alive() const;
    /** False once stream @p s's committer died. */
    bool streamAlive(unsigned s) const;

    /** Epoch frames handed to the writer (== the next global epoch
     *  index to append). */
    std::uint64_t epochsWritten() const;

    /** Stream @p s's image as it exists on "disk", damage included. */
    const std::vector<std::uint8_t> &streamBytes(unsigned s) const;

    /** Stream @p s's image size after each fully-committed frame;
     *  [0] is the header frame's end (resume prefixes are rescanned,
     *  so their frame boundaries appear too). Crash-sweep tests cut
     *  here. */
    const std::vector<std::size_t> &streamFrameEnds(unsigned s) const;

    /** Copies of all stream images, index-aligned. */
    std::vector<std::vector<std::uint8_t>> imageSet() const;

    /**
     * Drop every whole segment of epochs below @p durable_epoch (all
     * its epochs are covered by a durable checkpoint, so the journal
     * no longer needs them for recovery). Rewrites each stream as a
     * fresh header with the advanced baseEpoch plus the retained
     * frames, and restreams attached files. Returns bytes dropped
     * across all streams; 0 when segmentEpochs is 0, streams is 1
     * (v2 has no baseEpoch), or no whole segment is covered yet.
     */
    std::size_t truncateCoveredSegments(std::uint64_t durable_epoch);

    /** Stream every shard to streamPath(base, s, N). False (with a
     *  warning) if any file cannot be opened. */
    bool streamTo(const std::string &base);

    /** On-disk name of stream @p s of @p n: the base path itself for
     *  n == 1, otherwise base + ".s<s>". */
    static std::string streamPath(const std::string &base, unsigned s,
                                  unsigned n);

    /** Attach an observability sink (nullptr = off). */
    void setTrace(TraceRecorder *tr);

  private:
    struct Stream
    {
        std::vector<std::uint8_t> buf;
        std::vector<std::size_t> frameEnds;
        /** Next per-stream sequence number to commit. */
        std::uint64_t nextSeq = 0;
        bool aliveFlag = true;
        std::FILE *file = nullptr;
        std::size_t flushed = 0;
        /** Strand state (async mode): queued appends + whether a
         *  drain task is in flight. */
        std::deque<std::pair<EpochRecord, EpochId>> pending;
        bool running = false;
    };

    /** Per-stream sequence number owning epoch @p index. */
    std::uint64_t seqOf(std::uint64_t index) const;
    /** First epoch index >= base_ owned by stream @p s. */
    std::uint64_t firstIndexOf(unsigned s) const;
    void commitToStream(unsigned s, const EpochRecord &e,
                        EpochId index);
    void drainStream(unsigned s);
    void flushTail(Stream &st);

    unsigned streams_ = 1;
    std::uint64_t segmentEpochs_ = 0;
    std::uint64_t base_ = 0;
    std::uint64_t nextIndex_ = 0; ///< producer-side append cursor
    FaultInjector *faults_ = nullptr;
    TraceRecorder *trace_ = nullptr;
    /** Header ingredients, kept so truncation can rebuild stream
     *  headers with an advanced baseEpoch. */
    std::optional<GuestProgram> prog_;
    std::optional<MachineConfig> cfg_;
    std::uint64_t fingerprint_ = 0;
    /** streamTo() base path; truncation restreams through it. */
    std::string basePath_;
    /** streams_ == 1: the whole journal is this v2 writer. */
    std::unique_ptr<JournalWriter> v2_;
    std::vector<Stream> shards_;
    std::unique_ptr<Executor> pool_;
    mutable std::mutex mu_;
    mutable std::condition_variable room_; ///< strand back-pressure
    mutable std::condition_variable idle_; ///< flush() waits here
};

/** One stream's contribution to a sharded recovery. */
struct StreamRecovery
{
    /** The stream's own scan verdict (before the cross-stream cut). */
    RecoveryReport report;
    /** Frames of this stream inside the consistent cut. */
    std::uint64_t framesKept = 0;
    /** Valid prefix length: resume truncates this stream here. 0 for
     *  a stream recovery rejected outright (StreamMismatch). */
    std::size_t keptBytes = 0;
};

/** Result of recoverShardedJournal(). */
struct RecoveredShardedJournal
{
    /** The recovered epoch prefix [0, consistentEpochs) as a
     *  replayable Recording. Non-null exactly when report.headerOk
     *  and baseEpoch == 0 (a truncated journal no longer carries its
     *  early epochs; see tailEpochs). */
    std::unique_ptr<Recording> recording;
    /** Fingerprint from the canonical header. */
    std::uint64_t optionsFingerprint = 0;
    /** Streams in the set (the input arity). */
    std::uint32_t streamCount = 0;
    /** First epoch the journal carries (non-zero after segment
     *  truncation). */
    std::uint64_t baseEpoch = 0;
    /** The consistent cut E: epochs [baseEpoch, E) were recovered;
     *  epoch E is the first one missing from its owning stream. */
    std::uint64_t consistentEpochs = 0;
    /** Merged verdict. clean() means every stream validated fully
     *  *and* the streams agree on a cut that discards nothing. */
    RecoveryReport report;
    /** Per-stream verdicts and kept prefixes, index-aligned. */
    std::vector<StreamRecovery> streams;
    /** When baseEpoch > 0: the decoded epochs [baseEpoch, E) — the
     *  recovery tail to apply on top of the covering checkpoint. */
    std::vector<EpochRecord> tailEpochs;
};

/**
 * Recover a sharded journal from its per-stream images (pass exactly
 * the full set, index-aligned; a lost stream file is an empty span).
 * A single v2 journal image passes through the same machinery, so
 * this is also the parallel-recovery path for unsharded journals.
 *
 * Streams are scanned concurrently and the kept epochs decoded in
 * partitioned ranges across @p jobs workers on @p pool (nullptr: a
 * private pool of @p jobs workers; jobs <= 1 runs inline). The result
 * — recording bytes, reports, cut — is identical for every jobs
 * value; only wall-clock changes. Fail-closed like recoverJournal:
 * never panics, whatever the bytes.
 */
RecoveredShardedJournal recoverShardedJournal(
    const std::vector<std::span<const std::uint8_t>> &streams,
    unsigned jobs = 1, Executor *pool = nullptr);

/** Identity a v3 stream header claims. */
struct StreamInfo
{
    std::uint32_t streamIndex = 0;
    std::uint32_t streamCount = 1;
    std::uint64_t baseEpoch = 0;
};

/** If @p bytes begins with a valid v3 stream header frame, its
 *  claimed identity; nullopt for v2 journals, artifacts, garbage. */
std::optional<StreamInfo>
peekStreamInfo(std::span<const std::uint8_t> bytes);

namespace journal_detail
{
/** Scan one v3 stream image into a per-stream RecoveryReport (used
 *  by recoverJournal on a lone stream; recording stays null). */
RecoveredJournal recoverStreamReport(std::span<const std::uint8_t> bytes);
} // namespace journal_detail

} // namespace dp

#endif // DP_JOURNAL_SHARDED_HH
