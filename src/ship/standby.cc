#include "ship/standby.hh"

#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "journal/frame.hh"
#include "journal/journal.hh"
#include "journal/sharded.hh"
#include "replay/recording_io.hh"

namespace dp
{

std::string
FailoverReport::describe() const
{
    std::ostringstream out;
    if (failedClosed) {
        out << "standby failed closed: " << failReason;
    } else if (!promoted) {
        out << "standby empty: nothing to promote";
    } else {
        out << "promoted at epoch " << replayedEpochs << " (persisted "
            << persistedEpochs << "), state 0x" << std::hex
            << finalStateHash;
    }
    if (crashesRecovered)
        out << std::dec << "; survived " << crashesRecovered
            << " standby crash(es)";
    return out.str();
}

StandbyApplier::StandbyApplier(StandbyOptions opts)
    : opts_(opts)
{
    if (opts_.pool) {
        pool_ = opts_.pool;
    } else {
        ownPool_ = std::make_unique<Executor>(opts_.applyWorkers);
        pool_ = ownPool_.get();
    }
}

StandbyApplier::~StandbyApplier()
{
    std::unique_lock<std::mutex> lock(mu_);
    waitForStrandIdleLocked(lock);
}

ShipAck
StandbyApplier::ackLocked(std::uint64_t seq, bool accepted) const
{
    ShipAck ack;
    ack.accepted = accepted;
    ack.failedClosed = failed_;
    ack.batchSeq = seq;
    ack.streamOffsets.reserve(streams_.size());
    for (const StreamState &st : streams_)
        ack.streamOffsets.push_back(st.image.size());
    ack.persistedEpochs = nextPersist_;
    ack.replayedEpochs = replayed_;
    return ack;
}

std::uint64_t
StandbyApplier::lagLocked() const
{
    return nextPersist_ - baseEpoch_ - replayed_;
}

void
StandbyApplier::failLocked(std::string reason)
{
    if (failed_)
        return;
    failed_ = true;
    failReason_ = std::move(reason);
    dp_warn("standby failed closed: ", failReason_);
    lagCv_.notify_all();
}

void
StandbyApplier::configureLocked(std::uint32_t stream_count)
{
    configured_ = true;
    streams_.resize(stream_count);
}

void
StandbyApplier::ingestLocked(unsigned s)
{
    StreamState &st = streams_[s];
    const unsigned n = static_cast<unsigned>(streams_.size());
    std::span<const std::uint8_t> all(st.image);
    std::size_t pos = st.scanned;
    try {
        while (pos < all.size()) {
            std::size_t frame_start = pos;
            journal_detail::Frame f =
                journal_detail::parseFrame(all, pos);
            if (!st.headerSeen) {
                if (f.kind != journalHeaderKind) {
                    failLocked("stream " + std::to_string(s) +
                               ": first frame is not a header frame");
                    return;
                }
                ByteReader p(f.payload);
                std::uint64_t magic = p.u64fixed();
                if (magic >> 32 != journalMagic) {
                    failLocked("stream " + std::to_string(s) +
                               ": bad journal magic");
                    return;
                }
                std::uint64_t version = magic & 0xffffffff;
                if (version == journalVersion) {
                    if (n != 1) {
                        failLocked("v2 journal shipped as a multi-"
                                   "stream set");
                        return;
                    }
                    st.nextIndex = 0;
                } else if (version == journalVersion3) {
                    std::uint64_t stream = p.varu();
                    if (stream != s) {
                        failLocked(
                            "stream " + std::to_string(s) +
                            " carries a header claiming stream " +
                            std::to_string(stream));
                        return;
                    }
                    std::vector<std::uint8_t> suffix(
                        f.payload.begin() + p.pos(),
                        f.payload.end());
                    if (headerSuffix_.empty()) {
                        headerSuffix_ = suffix;
                    } else if (suffix != headerSuffix_) {
                        failLocked("stream " + std::to_string(s) +
                                   ": header disagrees with its "
                                   "siblings");
                        return;
                    }
                    std::uint64_t count = p.varu();
                    if (count != n) {
                        failLocked(
                            "stream " + std::to_string(s) +
                            ": header claims " +
                            std::to_string(count) + " streams, " +
                            std::to_string(n) + " shipped");
                        return;
                    }
                    baseEpoch_ = p.varu();
                    if (baseEpoch_ != 0) {
                        failLocked("cannot ship a truncated journal "
                                   "(baseEpoch " +
                                   std::to_string(baseEpoch_) + ")");
                        return;
                    }
                    // First epoch index stream s owns.
                    st.nextIndex = s;
                } else {
                    failLocked("unsupported journal version " +
                               std::to_string(version));
                    return;
                }
                if (!prog_) {
                    GuestProgram prog = readGuestProgram(p);
                    MachineConfig cfg = readMachineConfig(p);
                    (void)p.u64fixed(); // options fingerprint
                    prog_ = std::make_shared<const GuestProgram>(
                        std::move(prog));
                    cfg_ = cfg;
                    replica_ = std::make_unique<LiveReplica>(*prog_,
                                                             cfg_);
                    nextPersist_ = baseEpoch_;
                }
                st.headerSeen = true;
                st.scanned = pos;
                continue;
            }
            if (f.kind != journalEpochKind) {
                failLocked("stream " + std::to_string(s) +
                           ": header frame after frame 0");
                return;
            }
            ByteReader p(f.payload);
            std::uint64_t index = p.varu();
            if (index != st.nextIndex) {
                failLocked("stream " + std::to_string(s) +
                           ": epoch frame " + std::to_string(index) +
                           " where " + std::to_string(st.nextIndex) +
                           " expected");
                return;
            }
            if (n > 1) {
                std::uint64_t seq = p.varu();
                if (index % n != s || seq != index / n) {
                    failLocked(
                        "stream " + std::to_string(s) +
                        ": epoch " + std::to_string(index) +
                        " carries stream sequence " +
                        std::to_string(seq) + " (want " +
                        std::to_string(index / n) + ")");
                    return;
                }
            }
            std::uint64_t dirty = p.varu();
            std::uint64_t tp_instrs = p.varu();
            EpochRecord e = readEpochRecord(p, index);
            if (!p.atEnd()) {
                failLocked("stream " + std::to_string(s) +
                           ": trailing bytes in an epoch payload");
                return;
            }
            e.dirtyPages = dirty;
            e.tpInstrs = tp_instrs;
            parsed_.emplace(index, std::move(e));
            st.nextIndex += n;
            st.scanned = pos;
            (void)frame_start;
        }
    } catch (const journal_detail::FrameScanError &f) {
        if (f.error == JournalError::TruncatedFrame)
            return; // a batch boundary mid-frame: wait for the rest
        failLocked("stream " + std::to_string(s) + ": " + f.detail);
        return;
    } catch (const RecordingDecodeError &f) {
        failLocked("stream " + std::to_string(s) + ": " + f.detail);
        return;
    } catch (const ByteStreamError &) {
        failLocked("stream " + std::to_string(s) +
                   ": frame payload ended early");
        return;
    }
}

void
StandbyApplier::advanceContiguousLocked()
{
    for (auto it = parsed_.find(nextPersist_); it != parsed_.end();
         it = parsed_.find(nextPersist_)) {
        applyQueue_.push_back(std::move(it->second));
        parsed_.erase(it);
        ++nextPersist_;
    }
    stats_.maxLag = std::max(stats_.maxLag, lagLocked());
}

void
StandbyApplier::waitForStrandIdleLocked(
    std::unique_lock<std::mutex> &lock)
{
    idleCv_.wait(lock, [&] { return !strandRunning_; });
}

void
StandbyApplier::scheduleDrain(std::unique_lock<std::mutex> &lock)
{
    if (strandRunning_ || applyQueue_.empty() || failed_ ||
        !replica_)
        return;
    strandRunning_ = true;
    lock.unlock();
    pool_->submit([this] { drainApplies(); },
                  {.label = "standby-apply"});
    lock.lock();
}

void
StandbyApplier::drainApplies()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (applyQueue_.empty() || failed_ || !replica_) {
            strandRunning_ = false;
            idleCv_.notify_all();
            lagCv_.notify_all();
            return;
        }
        EpochRecord e = std::move(applyQueue_.front());
        applyQueue_.pop_front();
        LiveReplica *replica = replica_.get();
        lock.unlock();
        std::optional<ApplyError> err = replica->apply(e);
        lock.lock();
        if (err) {
            applyError_ = err;
            failLocked("apply: " + err->describe());
        } else {
            ++replayed_;
        }
        lagCv_.notify_all();
    }
}

void
StandbyApplier::crashLocked(std::unique_lock<std::mutex> &lock)
{
    // The process dies: wait out the in-flight apply (its effect is
    // discarded with the replica below), then lose everything
    // volatile. Only the persisted images survive.
    waitForStrandIdleLocked(lock);
    ++stats_.crashes;
    parsed_.clear();
    applyQueue_.clear();
    replica_.reset();
    prog_.reset();
    headerSuffix_.clear();
    replayed_ = 0;
    nextPersist_ = 0;
    baseEpoch_ = 0;

    // Restart: recover our own images exactly the way a restarted
    // standby process would, truncate to the committed prefix /
    // consistent cut, and re-apply from scratch.
    if (streams_.size() == 1) {
        RecoveredJournal rj = recoverJournal(streams_[0].image);
        std::size_t keep =
            rj.report.headerOk ? rj.report.committedBytes : 0;
        streams_[0].image.resize(keep);
    } else {
        std::vector<std::span<const std::uint8_t>> spans;
        spans.reserve(streams_.size());
        for (const StreamState &st : streams_)
            spans.emplace_back(st.image);
        RecoveredShardedJournal rsj = recoverShardedJournal(spans);
        for (unsigned s = 0; s < streams_.size(); ++s)
            streams_[s].image.resize(
                s < rsj.streams.size() ? rsj.streams[s].keptBytes
                                       : 0);
    }
    for (StreamState &st : streams_) {
        st.scanned = 0;
        st.headerSeen = false;
        st.nextIndex = 0;
    }
    for (unsigned s = 0; s < streams_.size(); ++s) {
        ingestLocked(s);
        if (failed_)
            return;
    }
    advanceContiguousLocked();
}

ShipAck
StandbyApplier::receive(std::span<const std::uint8_t> wire)
{
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.batchesReceived;

    std::optional<ShipBatch> b = decodeShipBatch(wire);
    if (!b) {
        ++stats_.tornRejected;
        return ackLocked(0, false);
    }
    if (failed_ || promoted_)
        return ackLocked(b->seq, false);

    if (opts_.faults &&
        opts_.faults->fire(FaultSite::StandbyCrash, b->seq)) {
        crashLocked(lock);
        scheduleDrain(lock);
        return ackLocked(b->seq, false);
    }

    if (!configured_) {
        if (b->streamCount == 0)
            return ackLocked(b->seq, false);
        configureLocked(b->streamCount);
    } else if (b->streamCount != streams_.size()) {
        failLocked("stream count changed mid-ship: " +
                   std::to_string(b->streamCount) + " after " +
                   std::to_string(streams_.size()));
        return ackLocked(b->seq, false);
    }
    if (b->stream >= streams_.size()) {
        failLocked("batch names stream " + std::to_string(b->stream) +
                   " of " + std::to_string(streams_.size()));
        return ackLocked(b->seq, false);
    }

    StreamState &st = streams_[b->stream];
    if (b->offset > st.image.size()) {
        ++stats_.gapNacks;
        return ackLocked(b->seq, false);
    }
    if (b->offset + b->bytes.size() <= st.image.size()) {
        // Fully known bytes (a late reordered copy or a retransmit):
        // absorbed idempotently.
        ++stats_.duplicateBatches;
        return ackLocked(b->seq, true);
    }
    std::size_t skip =
        static_cast<std::size_t>(st.image.size() - b->offset);
    st.image.insert(st.image.end(), b->bytes.begin() + skip,
                    b->bytes.end());
    ingestLocked(b->stream);
    if (failed_)
        return ackLocked(b->seq, false);
    advanceContiguousLocked();
    ++stats_.batchesAccepted;
    scheduleDrain(lock);

    // Bounded lag: hold the ack (and so the primary) while the
    // replica is too far behind what we just persisted.
    if (lagLocked() > opts_.lagBound) {
        ++stats_.lagWaits;
        lagCv_.wait(lock, [&] {
            return failed_ || lagLocked() <= opts_.lagBound;
        });
    }
    return ackLocked(b->seq, !failed_);
}

std::uint64_t
StandbyApplier::persistedEpochs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return nextPersist_;
}

std::uint64_t
StandbyApplier::replayedEpochs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return replayed_;
}

bool
StandbyApplier::failedClosed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failed_;
}

std::optional<ApplyError>
StandbyApplier::applyError() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return applyError_;
}

std::vector<std::uint64_t>
StandbyApplier::imageOffsets() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::uint64_t> offs;
    offs.reserve(streams_.size());
    for (const StreamState &st : streams_)
        offs.push_back(st.image.size());
    return offs;
}

std::vector<std::vector<std::uint8_t>>
StandbyApplier::imageSet() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::vector<std::uint8_t>> set;
    set.reserve(streams_.size());
    for (const StreamState &st : streams_)
        set.push_back(st.image);
    return set;
}

StandbyStats
StandbyApplier::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    StandbyStats st = stats_;
    st.persistedEpochs = nextPersist_;
    st.replayedEpochs = replayed_;
    return st;
}

void
StandbyApplier::drain()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        scheduleDrain(lock);
        if (strandRunning_) {
            waitForStrandIdleLocked(lock);
            continue;
        }
        if (applyQueue_.empty() || failed_ || !replica_)
            return;
    }
}

Promotion
StandbyApplier::promote()
{
    drain();
    std::unique_lock<std::mutex> lock(mu_);
    promoted_ = true;

    Promotion p;
    p.report.failedClosed = failed_;
    p.report.applyError = applyError_;
    p.report.failReason = failReason_;
    p.report.persistedEpochs = nextPersist_;
    p.report.replayedEpochs = replayed_;
    p.report.crashesRecovered = stats_.crashes;
    // Promotion rule: a machine comes out iff the standby never
    // failed closed — after a digest mismatch the replica sits past
    // the last verified boundary and must not serve.
    if (!failed_ && replica_) {
        p.program = prog_;
        p.machine = std::make_unique<Machine>(
            std::move(*replica_).takeOver());
        replica_.reset();
        p.report.finalStateHash = p.machine->stateHash();
        p.report.promoted = true;
    }
    return p;
}

} // namespace dp
