# Empty compiler generated dependencies file for bench_overhead_nospare.
# This may be replaced when dependencies are built.
