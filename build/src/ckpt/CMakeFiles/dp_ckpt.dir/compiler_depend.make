# Empty compiler generated dependencies file for dp_ckpt.
# This may be replaced when dependencies are built.
