# Empty compiler generated dependencies file for bench_host_pipeline.
# This may be replaced when dependencies are built.
