file(REMOVE_RECURSE
  "CMakeFiles/dp_mem.dir/paged_memory.cc.o"
  "CMakeFiles/dp_mem.dir/paged_memory.cc.o.d"
  "libdp_mem.a"
  "libdp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
