/**
 * @file
 * Fluid pipeline model of a uniparallel record session.
 *
 * The host implementation executes the two runs stage-by-stage, but in
 * a deployment they proceed concurrently: the thread-parallel run on N
 * cores generates checkpoints while epoch-parallel runs consume spare
 * cores. This model reconstructs that concurrency: tasks progress at
 * rates set by fair-sharing C cores between the thread-parallel task
 * (demand N) and each in-flight epoch task (demand 1). It yields the
 * recorded run's completion time, from which the harness computes the
 * paper's logging-overhead numbers — including the with-spare-cores
 * (C = 2N) and no-spare-cores (C = N) configurations.
 *
 * Divergence is modeled as a pipeline flush: the thread-parallel task
 * may not proceed past a diverged epoch until that epoch's
 * epoch-parallel run has finished (squash-and-restart serialization).
 */

#ifndef DP_TIMING_PIPELINE_HH
#define DP_TIMING_PIPELINE_HH

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hh"

namespace dp
{

/** Per-epoch durations fed to the model. */
struct EpochTiming
{
    /** Thread-parallel duration of the epoch (on N CPUs), including
     *  barrier + checkpoint time. */
    Cycles tp = 0;
    /** Epoch-parallel duration (one CPU), including the divergence
     *  check. */
    Cycles ep = 0;
    /** Epoch ended in a squash (pipeline flush after it). */
    bool diverged = false;
};

/** Machine shape for the model. */
struct PipelineOptions
{
    CpuId workerCpus = 2; ///< N: CPUs the thread-parallel run uses
    CpuId totalCpus = 4;  ///< C: CPUs in the machine
    /** Checkpoints allowed outstanding before the thread-parallel run
     *  stalls (memory bound); 0 = unbounded. */
    std::uint32_t maxInFlight = 0;
};

/** Per-epoch observability gauges the model reconstructs (the trace
 *  layer's metrics snapshot exports them per epoch). */
struct EpochPipelineGauges
{
    /** Epoch-parallel runs in flight right after this epoch's
     *  checkpoint handoff (the pipeline queue depth). */
    std::uint32_t queueDepth = 0;
    /** Cycles the thread-parallel run spent stalled — window full or
     *  squash flush — while producing this epoch. */
    Cycles stallCycles = 0;
};

/** Model outputs. */
struct PipelineResult
{
    /** When the last epoch-parallel run finishes: the recorded run's
     *  completion (all output committed). */
    Cycles completion = 0;
    /** When the thread-parallel run finishes. */
    Cycles tpCompletion = 0;
    /** Mean delay from checkpoint handoff to epoch validation. */
    double meanEpochLag = 0.0;
    /** Peak number of simultaneously in-flight epochs. */
    std::uint32_t peakInFlight = 0;
};

/** Evaluates the fluid pipeline model. */
class PipelineModel
{
  public:
    /** @p gauges (optional) receives one EpochPipelineGauges per
     *  input epoch, reconstructed from the same fluid trajectory. */
    static PipelineResult
    run(std::span<const EpochTiming> epochs,
        const PipelineOptions &opts,
        std::vector<EpochPipelineGauges> *gauges = nullptr);
};

} // namespace dp

#endif // DP_TIMING_PIPELINE_HH
