#include "analysis/profiler.hh"

#include <algorithm>

#include "mem/page.hh"

namespace dp
{

ThreadProfile &
ReplayProfiler::profileOf(ThreadId tid)
{
    if (tid >= threads_.size())
        threads_.resize(tid + 1);
    return threads_[tid];
}

ReplayObserver
ReplayProfiler::observer()
{
    ReplayObserver obs;
    obs.onEpochStart = [this](EpochId e) {
        currentEpoch_ = e;
        if (epochAccesses_.size() <= e)
            epochAccesses_.resize(e + 1, 0);
    };
    obs.onMemAccess = [this](ThreadId tid, Addr addr, unsigned,
                             bool is_write, bool is_atomic) {
        ThreadProfile &p = profileOf(tid);
        if (is_atomic)
            ++p.atomics;
        else if (is_write)
            ++p.writes;
        else
            ++p.reads;
        ++totalAccesses_;
        if (currentEpoch_ < epochAccesses_.size())
            ++epochAccesses_[currentEpoch_];
        auto &[count, mask] = pages_[addr >> Page::logBytes];
        ++count;
        if (tid < 64)
            mask |= std::uint64_t{1} << tid;
    };
    obs.onSync = [this](ThreadId, SyncKind, SyncKey) {
        ++totalSyncOps_;
    };
    obs.onSyscall = [this](ThreadId tid, Sys sys, std::uint64_t,
                           bool) {
        ThreadProfile &p = profileOf(tid);
        ++p.syscalls;
        ++p.bySyscall[sys];
    };
    obs.onWake = [this](ThreadId waker, ThreadId woken) {
        ++profileOf(waker).wakesGiven;
        ++profileOf(woken).wakesReceived;
    };
    return obs;
}

std::vector<HotPage>
ReplayProfiler::hottestPages(std::size_t n) const
{
    std::vector<HotPage> all;
    all.reserve(pages_.size());
    for (const auto &[page, info] : pages_) {
        HotPage hp;
        hp.pageAddr = page << Page::logBytes;
        hp.accesses = info.first;
        hp.threadsTouching = static_cast<std::uint32_t>(
            __builtin_popcountll(info.second));
        all.push_back(hp);
    }
    std::sort(all.begin(), all.end(),
              [](const HotPage &a, const HotPage &b) {
                  return a.accesses > b.accesses;
              });
    if (all.size() > n)
        all.resize(n);
    return all;
}

} // namespace dp
