#include "vm/interp.hh"

#include "common/logging.hh"
#include "mem/paged_memory.hh"

namespace dp
{

namespace
{

/** Faulting threads exit with this code (visible to join()). */
constexpr std::uint64_t faultExitCode = 0xdead;

} // namespace

// The decode table (decode.cc) allocates one handler slot per opcode
// plus a trailing fault slot; adding an opcode means adding a handler
// to BOTH dispatch variants below.
static_assert(static_cast<unsigned>(Opcode::NumOpcodes) == 48,
              "opcode count changed: update the dispatch tables");

#if defined(DP_THREADED_DISPATCH) && defined(__GNUC__)
#define DP_DISPATCH_THREADED 1
#else
#define DP_DISPATCH_THREADED 0
#endif

#if DP_DISPATCH_THREADED

namespace
{

/**
 * The threaded (computed-goto) block runner. Handler label addresses
 * are function-local, so the same function doubles as the table
 * exporter: called with @p tc == nullptr it returns the label table
 * (indexed by opcode, trailing slot = fault) without executing
 * anything; otherwise it runs and fills @p *out, returning nullptr.
 *
 * Semantics are identical to the portable switch fallback below —
 * the two are maintained as a pair.
 */
const void *const *
threadedBlockRun(ThreadContext *tc, PagedMemory *memp,
                 std::uint64_t max, std::uint8_t stop,
                 const DecodedInstr *code, std::size_t code_size,
                 Interpreter::BlockResult *out)
{
    // Must match Opcode declaration order exactly; the static_assert
    // above guards the count.
    static const void *const table[] = {
        &&h_Nop,
        &&h_Li, &&h_Mov,
        &&h_Add, &&h_Sub, &&h_Mul, &&h_Divu, &&h_Remu,
        &&h_And, &&h_Or, &&h_Xor,
        &&h_Shl, &&h_Shr, &&h_Sar,
        &&h_SltU, &&h_SltS, &&h_Seq,
        &&h_Addi, &&h_Andi, &&h_Ori, &&h_Xori,
        &&h_Shli, &&h_Shri, &&h_Muli,
        &&h_Ld8, &&h_Ld16, &&h_Ld32, &&h_Ld64,
        &&h_St8, &&h_St16, &&h_St32, &&h_St64,
        &&h_Beq, &&h_Bne, &&h_BltU, &&h_BltS, &&h_BgeU, &&h_BgeS,
        &&h_Beqz, &&h_Bnez,
        &&h_Jmp, &&h_Jal, &&h_Jr,
        &&h_Cas, &&h_FetchAdd, &&h_Xchg,
        &&h_Syscall, &&h_Halt,
        &&h_fault, // Opcode::NumOpcodes: invalid encodings
    };
    static_assert(sizeof(table) / sizeof(table[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes) + 1);

    if (tc == nullptr)
        return table;

    PagedMemory &mem = *memp;
    std::uint64_t *const regs = tc->regs.data();
    std::uint64_t pc = tc->pc;
    std::uint64_t n = 0;
    const DecodedInstr *ip = nullptr;
    StepKind last = StepKind::Ok;

#define DP_IMM(i) static_cast<std::uint64_t>((i)->imm)
#define DP_NEXT()                                                       \
    do {                                                                \
        if (n == max)                                                   \
            goto stop_budget;                                           \
        if (pc >= code_size)                                            \
            goto h_fault;                                               \
        ip = code + pc;                                                 \
        if (ip->cls & stop)                                             \
            goto stop_class;                                            \
        goto *const_cast<void *>(ip->handler);                          \
    } while (0)

    DP_NEXT();

h_Nop:
    ++pc; ++n; DP_NEXT();
h_Li:
    regs[ip->rd] = DP_IMM(ip);
    ++pc; ++n; DP_NEXT();
h_Mov:
    regs[ip->rd] = regs[ip->rs1];
    ++pc; ++n; DP_NEXT();

h_Add:
    regs[ip->rd] = regs[ip->rs1] + regs[ip->rs2];
    ++pc; ++n; DP_NEXT();
h_Sub:
    regs[ip->rd] = regs[ip->rs1] - regs[ip->rs2];
    ++pc; ++n; DP_NEXT();
h_Mul:
    regs[ip->rd] = regs[ip->rs1] * regs[ip->rs2];
    ++pc; ++n; DP_NEXT();
h_Divu:
    // RISC-V semantics: division by zero yields all ones.
    regs[ip->rd] = regs[ip->rs2] == 0 ? ~std::uint64_t{0}
                                      : regs[ip->rs1] / regs[ip->rs2];
    ++pc; ++n; DP_NEXT();
h_Remu:
    regs[ip->rd] = regs[ip->rs2] == 0 ? regs[ip->rs1]
                                      : regs[ip->rs1] % regs[ip->rs2];
    ++pc; ++n; DP_NEXT();
h_And:
    regs[ip->rd] = regs[ip->rs1] & regs[ip->rs2];
    ++pc; ++n; DP_NEXT();
h_Or:
    regs[ip->rd] = regs[ip->rs1] | regs[ip->rs2];
    ++pc; ++n; DP_NEXT();
h_Xor:
    regs[ip->rd] = regs[ip->rs1] ^ regs[ip->rs2];
    ++pc; ++n; DP_NEXT();
h_Shl:
    regs[ip->rd] = regs[ip->rs1] << (regs[ip->rs2] & 63);
    ++pc; ++n; DP_NEXT();
h_Shr:
    regs[ip->rd] = regs[ip->rs1] >> (regs[ip->rs2] & 63);
    ++pc; ++n; DP_NEXT();
h_Sar:
    regs[ip->rd] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(regs[ip->rs1]) >>
        (regs[ip->rs2] & 63));
    ++pc; ++n; DP_NEXT();
h_SltU:
    regs[ip->rd] = regs[ip->rs1] < regs[ip->rs2] ? 1 : 0;
    ++pc; ++n; DP_NEXT();
h_SltS:
    regs[ip->rd] = static_cast<std::int64_t>(regs[ip->rs1]) <
                           static_cast<std::int64_t>(regs[ip->rs2])
                       ? 1
                       : 0;
    ++pc; ++n; DP_NEXT();
h_Seq:
    regs[ip->rd] = regs[ip->rs1] == regs[ip->rs2] ? 1 : 0;
    ++pc; ++n; DP_NEXT();

h_Addi:
    regs[ip->rd] = regs[ip->rs1] + DP_IMM(ip);
    ++pc; ++n; DP_NEXT();
h_Andi:
    regs[ip->rd] = regs[ip->rs1] & DP_IMM(ip);
    ++pc; ++n; DP_NEXT();
h_Ori:
    regs[ip->rd] = regs[ip->rs1] | DP_IMM(ip);
    ++pc; ++n; DP_NEXT();
h_Xori:
    regs[ip->rd] = regs[ip->rs1] ^ DP_IMM(ip);
    ++pc; ++n; DP_NEXT();
h_Shli:
    regs[ip->rd] = regs[ip->rs1] << (DP_IMM(ip) & 63);
    ++pc; ++n; DP_NEXT();
h_Shri:
    regs[ip->rd] = regs[ip->rs1] >> (DP_IMM(ip) & 63);
    ++pc; ++n; DP_NEXT();
h_Muli:
    regs[ip->rd] = regs[ip->rs1] * DP_IMM(ip);
    ++pc; ++n; DP_NEXT();

h_Ld8:
    regs[ip->rd] = mem.read8(regs[ip->rs1] + DP_IMM(ip));
    ++pc; ++n; DP_NEXT();
h_Ld16:
    regs[ip->rd] = mem.read16(regs[ip->rs1] + DP_IMM(ip));
    ++pc; ++n; DP_NEXT();
h_Ld32:
    regs[ip->rd] = mem.read32(regs[ip->rs1] + DP_IMM(ip));
    ++pc; ++n; DP_NEXT();
h_Ld64:
    regs[ip->rd] = mem.read64(regs[ip->rs1] + DP_IMM(ip));
    ++pc; ++n; DP_NEXT();
h_St8:
    mem.write8(regs[ip->rs1] + DP_IMM(ip),
               static_cast<std::uint8_t>(regs[ip->rs2]));
    ++pc; ++n; DP_NEXT();
h_St16:
    mem.write16(regs[ip->rs1] + DP_IMM(ip),
                static_cast<std::uint16_t>(regs[ip->rs2]));
    ++pc; ++n; DP_NEXT();
h_St32:
    mem.write32(regs[ip->rs1] + DP_IMM(ip),
                static_cast<std::uint32_t>(regs[ip->rs2]));
    ++pc; ++n; DP_NEXT();
h_St64:
    mem.write64(regs[ip->rs1] + DP_IMM(ip), regs[ip->rs2]);
    ++pc; ++n; DP_NEXT();

h_Beq:
    pc = regs[ip->rs1] == regs[ip->rs2] ? DP_IMM(ip) : pc + 1;
    ++n; DP_NEXT();
h_Bne:
    pc = regs[ip->rs1] != regs[ip->rs2] ? DP_IMM(ip) : pc + 1;
    ++n; DP_NEXT();
h_BltU:
    pc = regs[ip->rs1] < regs[ip->rs2] ? DP_IMM(ip) : pc + 1;
    ++n; DP_NEXT();
h_BltS:
    pc = static_cast<std::int64_t>(regs[ip->rs1]) <
                 static_cast<std::int64_t>(regs[ip->rs2])
             ? DP_IMM(ip)
             : pc + 1;
    ++n; DP_NEXT();
h_BgeU:
    pc = regs[ip->rs1] >= regs[ip->rs2] ? DP_IMM(ip) : pc + 1;
    ++n; DP_NEXT();
h_BgeS:
    pc = static_cast<std::int64_t>(regs[ip->rs1]) >=
                 static_cast<std::int64_t>(regs[ip->rs2])
             ? DP_IMM(ip)
             : pc + 1;
    ++n; DP_NEXT();
h_Beqz:
    pc = regs[ip->rs1] == 0 ? DP_IMM(ip) : pc + 1;
    ++n; DP_NEXT();
h_Bnez:
    pc = regs[ip->rs1] != 0 ? DP_IMM(ip) : pc + 1;
    ++n; DP_NEXT();
h_Jmp:
    pc = DP_IMM(ip);
    ++n; DP_NEXT();
h_Jal:
    regs[ip->rd] = pc + 1;
    pc = DP_IMM(ip);
    ++n; DP_NEXT();
h_Jr:
    pc = regs[ip->rs1];
    ++n; DP_NEXT();

h_Cas: {
    std::uint64_t addr = regs[ip->rs1];
    std::uint64_t old = mem.read64(addr);
    if (old == regs[ip->rd])
        mem.write64(addr, regs[ip->rs2]);
    regs[ip->rd] = old;
    ++pc; ++n; DP_NEXT();
}
h_FetchAdd: {
    std::uint64_t addr = regs[ip->rs1];
    std::uint64_t old = mem.read64(addr);
    mem.write64(addr, old + regs[ip->rs2]);
    regs[ip->rd] = old;
    ++pc; ++n; DP_NEXT();
}
h_Xchg: {
    std::uint64_t addr = regs[ip->rs1];
    std::uint64_t old = mem.read64(addr);
    mem.write64(addr, regs[ip->rs2]);
    regs[ip->rd] = old;
    ++pc; ++n; DP_NEXT();
}

h_Syscall:
    // Unreachable in practice: runBlock always puts ClsSyscall in the
    // stop mask, so syscalls are caught at stop_class. Kept so the
    // table stays total.
    last = StepKind::SyscallTrap;
    goto write_back;

h_Halt:
    tc->state = RunState::Exited;
    tc->exitCode = regs[0];
    ++n;
    last = StepKind::Halted;
    goto write_back;

h_fault:
    tc->state = RunState::Exited;
    tc->exitCode = faultExitCode;
    ++n;
    last = StepKind::Fault;
    goto write_back;

stop_class:
    last = (ip->cls & ClsSyscall) ? StepKind::SyscallTrap : StepKind::Ok;
    goto write_back;

stop_budget:
    last = StepKind::Ok;

write_back:
    tc->pc = pc;
    tc->retired += n;
    out->instrs = n;
    out->last = last;
    return nullptr;

#undef DP_NEXT
#undef DP_IMM
}

} // namespace

#else // !DP_DISPATCH_THREADED

namespace
{

/**
 * Portable switch-dispatch block runner: the exact semantics of the
 * threaded variant above, for compilers without computed goto or
 * builds with DP_THREADED_DISPATCH off.
 */
Interpreter::BlockResult
switchBlockRun(ThreadContext &tc, PagedMemory &mem, std::uint64_t max,
               std::uint8_t stop, const DecodedInstr *code,
               std::size_t code_size)
{
    std::uint64_t *const regs = tc.regs.data();
    std::uint64_t pc = tc.pc;
    std::uint64_t n = 0;
    StepKind last = StepKind::Ok;

    for (;;) {
        if (n == max)
            break;
        if (pc >= code_size) {
            tc.state = RunState::Exited;
            tc.exitCode = faultExitCode;
            ++n;
            last = StepKind::Fault;
            break;
        }
        const DecodedInstr &in = code[pc];
        if (in.cls & stop) {
            last = (in.cls & ClsSyscall) ? StepKind::SyscallTrap
                                         : StepKind::Ok;
            break;
        }

        std::uint64_t imm = static_cast<std::uint64_t>(in.imm);
        std::uint64_t next_pc = pc + 1;

        switch (in.op) {
          case Opcode::Nop:
            break;
          case Opcode::Li:
            regs[in.rd] = imm;
            break;
          case Opcode::Mov:
            regs[in.rd] = regs[in.rs1];
            break;

          case Opcode::Add: regs[in.rd] = regs[in.rs1] + regs[in.rs2]; break;
          case Opcode::Sub: regs[in.rd] = regs[in.rs1] - regs[in.rs2]; break;
          case Opcode::Mul: regs[in.rd] = regs[in.rs1] * regs[in.rs2]; break;
          case Opcode::Divu:
            // RISC-V semantics: division by zero yields all ones.
            regs[in.rd] = regs[in.rs2] == 0
                              ? ~std::uint64_t{0}
                              : regs[in.rs1] / regs[in.rs2];
            break;
          case Opcode::Remu:
            regs[in.rd] = regs[in.rs2] == 0
                              ? regs[in.rs1]
                              : regs[in.rs1] % regs[in.rs2];
            break;
          case Opcode::And: regs[in.rd] = regs[in.rs1] & regs[in.rs2]; break;
          case Opcode::Or:  regs[in.rd] = regs[in.rs1] | regs[in.rs2]; break;
          case Opcode::Xor: regs[in.rd] = regs[in.rs1] ^ regs[in.rs2]; break;
          case Opcode::Shl:
            regs[in.rd] = regs[in.rs1] << (regs[in.rs2] & 63);
            break;
          case Opcode::Shr:
            regs[in.rd] = regs[in.rs1] >> (regs[in.rs2] & 63);
            break;
          case Opcode::Sar:
            regs[in.rd] = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(regs[in.rs1]) >>
                (regs[in.rs2] & 63));
            break;
          case Opcode::SltU:
            regs[in.rd] = regs[in.rs1] < regs[in.rs2] ? 1 : 0;
            break;
          case Opcode::SltS:
            regs[in.rd] = static_cast<std::int64_t>(regs[in.rs1]) <
                                  static_cast<std::int64_t>(regs[in.rs2])
                              ? 1
                              : 0;
            break;
          case Opcode::Seq:
            regs[in.rd] = regs[in.rs1] == regs[in.rs2] ? 1 : 0;
            break;

          case Opcode::Addi: regs[in.rd] = regs[in.rs1] + imm; break;
          case Opcode::Andi: regs[in.rd] = regs[in.rs1] & imm; break;
          case Opcode::Ori:  regs[in.rd] = regs[in.rs1] | imm; break;
          case Opcode::Xori: regs[in.rd] = regs[in.rs1] ^ imm; break;
          case Opcode::Shli: regs[in.rd] = regs[in.rs1] << (imm & 63); break;
          case Opcode::Shri: regs[in.rd] = regs[in.rs1] >> (imm & 63); break;
          case Opcode::Muli: regs[in.rd] = regs[in.rs1] * imm; break;

          case Opcode::Ld8:
            regs[in.rd] = mem.read8(regs[in.rs1] + imm);
            break;
          case Opcode::Ld16:
            regs[in.rd] = mem.read16(regs[in.rs1] + imm);
            break;
          case Opcode::Ld32:
            regs[in.rd] = mem.read32(regs[in.rs1] + imm);
            break;
          case Opcode::Ld64:
            regs[in.rd] = mem.read64(regs[in.rs1] + imm);
            break;
          case Opcode::St8:
            mem.write8(regs[in.rs1] + imm,
                       static_cast<std::uint8_t>(regs[in.rs2]));
            break;
          case Opcode::St16:
            mem.write16(regs[in.rs1] + imm,
                        static_cast<std::uint16_t>(regs[in.rs2]));
            break;
          case Opcode::St32:
            mem.write32(regs[in.rs1] + imm,
                        static_cast<std::uint32_t>(regs[in.rs2]));
            break;
          case Opcode::St64:
            mem.write64(regs[in.rs1] + imm, regs[in.rs2]);
            break;

          case Opcode::Beq:
            if (regs[in.rs1] == regs[in.rs2])
                next_pc = imm;
            break;
          case Opcode::Bne:
            if (regs[in.rs1] != regs[in.rs2])
                next_pc = imm;
            break;
          case Opcode::BltU:
            if (regs[in.rs1] < regs[in.rs2])
                next_pc = imm;
            break;
          case Opcode::BltS:
            if (static_cast<std::int64_t>(regs[in.rs1]) <
                static_cast<std::int64_t>(regs[in.rs2]))
                next_pc = imm;
            break;
          case Opcode::BgeU:
            if (regs[in.rs1] >= regs[in.rs2])
                next_pc = imm;
            break;
          case Opcode::BgeS:
            if (static_cast<std::int64_t>(regs[in.rs1]) >=
                static_cast<std::int64_t>(regs[in.rs2]))
                next_pc = imm;
            break;
          case Opcode::Beqz:
            if (regs[in.rs1] == 0)
                next_pc = imm;
            break;
          case Opcode::Bnez:
            if (regs[in.rs1] != 0)
                next_pc = imm;
            break;
          case Opcode::Jmp:
            next_pc = imm;
            break;
          case Opcode::Jal:
            regs[in.rd] = pc + 1;
            next_pc = imm;
            break;
          case Opcode::Jr:
            next_pc = regs[in.rs1];
            break;

          case Opcode::Cas: {
            std::uint64_t addr = regs[in.rs1];
            std::uint64_t old = mem.read64(addr);
            if (old == regs[in.rd])
                mem.write64(addr, regs[in.rs2]);
            regs[in.rd] = old;
            break;
          }
          case Opcode::FetchAdd: {
            std::uint64_t addr = regs[in.rs1];
            std::uint64_t old = mem.read64(addr);
            mem.write64(addr, old + regs[in.rs2]);
            regs[in.rd] = old;
            break;
          }
          case Opcode::Xchg: {
            std::uint64_t addr = regs[in.rs1];
            std::uint64_t old = mem.read64(addr);
            mem.write64(addr, regs[in.rs2]);
            regs[in.rd] = old;
            break;
          }

          case Opcode::Syscall:
            // Unreachable in practice: ClsSyscall is always in the
            // stop mask, so syscalls stop the block above.
            last = StepKind::SyscallTrap;
            goto out;

          case Opcode::Halt:
            tc.state = RunState::Exited;
            tc.exitCode = regs[0];
            ++n;
            last = StepKind::Halted;
            goto out;

          default:
            tc.state = RunState::Exited;
            tc.exitCode = faultExitCode;
            ++n;
            last = StepKind::Fault;
            goto out;
        }

        pc = next_pc;
        ++n;
    }

out:
    tc.pc = pc;
    tc.retired += n;
    return {n, last};
}

} // namespace

#endif // DP_DISPATCH_THREADED

const void *const *
interpDispatchTable()
{
#if DP_DISPATCH_THREADED
    return threadedBlockRun(nullptr, nullptr, 0, 0, nullptr, 0, nullptr);
#else
    return nullptr;
#endif
}

const char *
Interpreter::dispatchKindName()
{
#if DP_DISPATCH_THREADED
    return "threaded";
#else
    return "switch";
#endif
}

Interpreter::BlockResult
Interpreter::runBlock(ThreadContext &tc, PagedMemory &mem,
                      std::uint64_t max_instrs,
                      std::uint8_t stop_mask) const
{
    dp_assert(tc.state == RunState::Runnable,
              "running a non-runnable thread ", tc.tid);

    const DecodedProgram &dec = ensureDecoded();
    // Syscalls always stop a block: only the OS can complete them.
    const std::uint8_t stop = stop_mask | ClsSyscall;

    BlockResult out;
#if DP_DISPATCH_THREADED
    threadedBlockRun(&tc, &mem, max_instrs, stop, dec.code.data(),
                     dec.code.size(), &out);
#else
    out = switchBlockRun(tc, mem, max_instrs, stop, dec.code.data(),
                         dec.code.size());
#endif
    return out;
}

StepKind
Interpreter::step(ThreadContext &tc, PagedMemory &mem) const
{
    // One instruction is a block of one: the budget stops after a
    // plain instruction (Ok), a syscall stops before executing
    // (SyscallTrap), Halt/Fault terminate inside the block.
    return runBlock(tc, mem, 1, 0).last;
}

} // namespace dp
