/**
 * @file
 * Frame primitives shared by the single-stream journal writer
 * (journal.cc) and the sharded multi-stream writer/recovery
 * (sharded.cc). Internal to src/journal — the frame wire format is
 * not a public API.
 *
 * Every committed frame, in every journal version, has the shape
 *
 *   frame := u8 kind | varu payloadLen | payload
 *            | u64fixed crc32c(kind || payload) | u8 0x5A
 *
 * so one parser serves both formats; the version-specific structure
 * lives entirely inside the payloads.
 */

#ifndef DP_JOURNAL_FRAME_HH
#define DP_JOURNAL_FRAME_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "common/crc32.hh"
#include "common/logging.hh"
#include "journal/journal.hh"

namespace dp::journal_detail
{

inline std::uint32_t
frameCrc(std::uint8_t kind, std::span<const std::uint8_t> payload)
{
    return crc32c(payload, crc32c({&kind, 1}));
}

/** Assemble one committed frame around @p payload. */
inline std::vector<std::uint8_t>
makeFrame(std::uint8_t kind, std::vector<std::uint8_t> payload)
{
    ByteWriter w;
    w.u8(kind);
    w.varu(payload.size());
    std::vector<std::uint8_t> frame = w.take();
    frame.insert(frame.end(), payload.begin(), payload.end());
    std::uint32_t crc = frameCrc(kind, payload);
    for (int i = 0; i < 8; ++i)
        frame.push_back(static_cast<std::uint8_t>(
            std::uint64_t{crc} >> (8 * i)));
    frame.push_back(journalCommitMarker);
    return frame;
}

/** Scan abort: why, where, and what. */
struct FrameScanError
{
    JournalError error;
    std::size_t offset;
    std::string detail;
};

struct Frame
{
    std::uint8_t kind = 0;
    std::span<const std::uint8_t> payload;
};

/**
 * Validate the frame starting at @p pos and advance @p pos past it.
 * Throws FrameScanError; every check precedes any use of the bytes it
 * guards, so arbitrary garbage cannot fault.
 */
inline Frame
parseFrame(std::span<const std::uint8_t> all, std::size_t &pos)
{
    std::size_t start = pos;
    auto need = [&](std::uint64_t n, const char *what) {
        if (all.size() - pos < n)
            throw FrameScanError{
                JournalError::TruncatedFrame, pos,
                detail::concat("image ends inside a frame's ", what)};
    };

    need(1, "kind byte");
    std::uint8_t kind = all[pos++];
    if (kind != journalHeaderKind && kind != journalEpochKind)
        throw FrameScanError{
            JournalError::BadFrameKind, start,
            detail::concat("unknown frame kind ", int(kind))};

    std::uint64_t len = 0;
    int shift = 0;
    for (;;) {
        need(1, "length");
        std::uint8_t b = all[pos++];
        len |= std::uint64_t{b & 0x7fu} << shift;
        if (!(b & 0x80))
            break;
        shift += 7;
        if (shift >= 64)
            throw FrameScanError{JournalError::BadPayload, pos,
                                 "overlong frame length varint"};
    }
    need(len, "payload");
    std::span<const std::uint8_t> payload =
        all.subspan(pos, static_cast<std::size_t>(len));
    pos += static_cast<std::size_t>(len);

    need(9, "trailer");
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= std::uint64_t{all[pos++]} << (8 * i);
    std::uint8_t marker = all[pos++];
    if (stored != frameCrc(kind, payload))
        throw FrameScanError{JournalError::BadChecksum, start,
                             "frame CRC mismatch"};
    if (marker != journalCommitMarker)
        throw FrameScanError{JournalError::BadCommitMarker, pos - 1,
                             "frame commit marker missing"};
    return {kind, payload};
}

inline void
reportScanStop(RecoveryReport &rep, const FrameScanError &f)
{
    rep.tailError = f.error;
    rep.errorOffset = f.offset;
    rep.detail = f.detail;
}

} // namespace dp::journal_detail

#endif // DP_JOURNAL_FRAME_HH
