/**
 * @file
 * Small non-cryptographic hashing utilities used for state digests.
 *
 * Divergence detection and replay verification compare 64-bit digests of
 * guest memory, thread contexts, and OS state. These only need to be
 * fast and well mixed; they are never exposed to adversarial input.
 */

#ifndef DP_COMMON_HASH_HH
#define DP_COMMON_HASH_HH

#include <cstddef>
#include <cstdint>
#include <span>

namespace dp
{

/** FNV-1a over a byte range. */
inline std::uint64_t
fnv1a64(std::span<const std::uint8_t> bytes,
        std::uint64_t seed = 0xcbf29ce484222325ull)
{
    std::uint64_t h = seed;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer; good avalanche for combining words. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Order-dependent combination of two 64-bit digests. */
inline std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

/**
 * Word-at-a-time hash over a byte range; much faster than fnv1a64 for
 * page-sized inputs. Reads 8-byte chunks via memcpy, mixes the tail.
 */
inline std::uint64_t
fastHash64(std::span<const std::uint8_t> bytes,
           std::uint64_t seed = 0x9e3779b97f4a7c15ull)
{
    std::uint64_t h = seed;
    std::size_t i = 0;
    const std::size_t n = bytes.size();
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        __builtin_memcpy(&w, bytes.data() + i, 8);
        h = mix64(h ^ w) + 0x2545f4914f6cdd1dull;
    }
    std::uint64_t tail = 0;
    const std::size_t rem = n - i; // < 8 by the loop above
    for (std::size_t k = 0; k < rem && k < 8; ++k)
        tail |= static_cast<std::uint64_t>(bytes[i + k]) << (8 * k);
    h = mix64(h ^ tail);
    return mix64(h ^ n);
}

/**
 * Incremental digest builder with value semantics.
 *
 * Feed words or byte ranges; the result depends on feed order, which is
 * what state comparison wants (structure-sensitive digests).
 */
class Digest
{
  public:
    /** Mix one 64-bit word into the digest. */
    void
    word(std::uint64_t w)
    {
        state_ = hashCombine(state_, mix64(w));
    }

    /** Mix a byte range into the digest. */
    void
    bytes(std::span<const std::uint8_t> b)
    {
        state_ = hashCombine(state_, fnv1a64(b));
    }

    /** Final digest value. */
    std::uint64_t value() const { return state_; }

  private:
    std::uint64_t state_ = 0x2545f4914f6cdd1dull;
};

} // namespace dp

#endif // DP_COMMON_HASH_HH
