/**
 * @file
 * radix workload: two-pass LSD radix sort with per-thread histograms,
 * a serial prefix phase, and disjoint scatter (the SPLASH-2 radix
 * sharing pattern).
 */

#include "workloads/factories.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workloads/wl_common.hh"

namespace dp::workloads
{

using enum Reg;
namespace lib = dp::asmlib;

namespace
{

constexpr std::int64_t histOff = 0x0000;    // 256 u64 per thread
constexpr std::int64_t scatterOff = 0x0800; // 256 u64 per thread

/** Host reference: position-weighted checksum of the stable sort by
 *  the low 16 bits (what two 8-bit passes produce). */
std::uint64_t
radixReference(std::vector<std::uint64_t> data)
{
    std::stable_sort(data.begin(), data.end(),
                     [](std::uint64_t x, std::uint64_t y) {
                         return (x & 0xffff) < (y & 0xffff);
                     });
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < data.size(); ++i)
        sum += (i + 1) * data[i];
    return sum;
}

} // namespace

WorkloadBundle
makeRadix(const WorkloadParams &p)
{
    const std::uint64_t n = 4096ull * p.scale;
    dp_assert(n % p.threads == 0,
              "radix element count must divide by thread count");
    const std::uint64_t perThread = n / p.threads;

    std::vector<std::uint64_t> input = makeInputWords(n, p.seed);

    Assembler a;
    Label worker = a.newLabel();
    a.dataU64s(wlInput, input);

    emitSpawnJoin(a, p.threads, worker);
    emitWriteGlobalAndExit(a, gResult);

    // ---- worker ----
    // Persistent: r7=pass, r8=barrier, r9=T, r11=my hist base,
    // r12=my chunk byte offset, r13=index, r15=my scatter base.
    a.bind(worker);
    a.mov(r13, r1);
    a.lia(r8, wlBarrier);
    a.li(r9, static_cast<std::int64_t>(p.threads));
    emitThreadBase(a, r13, r11);
    a.addi(r15, r11, scatterOff);
    a.addi(r11, r11, histOff);
    a.muli(r12, r13, static_cast<std::int64_t>(perThread * 8));
    a.li(r7, 0); // pass

    Label pass_loop = a.hereLabel();
    Label passes_done = a.newLabel();
    a.li(r1, 2);
    a.bgeu(r7, r1, passes_done);

    // in/out base by parity: pass 0: input->output, pass 1: back.
    Label odd = a.newLabel();
    Label bases_set = a.newLabel();
    a.bnez(r7, odd);
    a.lia(r10, wlInput);
    a.lia(r14, wlOutput);
    a.jmp(bases_set);
    a.bind(odd);
    a.lia(r10, wlOutput);
    a.lia(r14, wlInput);
    a.bind(bases_set);

    // Phase A: zero my histogram, then count my chunk's digits.
    a.li(r4, 0);
    Label zero_loop = a.hereLabel();
    Label zeroed = a.newLabel();
    a.li(r5, 256);
    a.bgeu(r4, r5, zeroed);
    a.shli(r5, r4, 3);
    a.add(r5, r11, r5);
    a.li(r6, 0);
    a.st64(r5, 0, r6);
    a.addi(r4, r4, 1);
    a.jmp(zero_loop);
    a.bind(zeroed);

    a.shli(r6, r7, 3); // digit shift = pass * 8
    a.add(r4, r10, r12); // cursor
    a.li(r5, static_cast<std::int64_t>(perThread)); // remaining
    Label count_loop = a.hereLabel();
    Label counted = a.newLabel();
    a.beqz(r5, counted);
    a.ld64(r1, r4, 0);
    a.shr(r1, r1, r6);
    a.andi(r1, r1, 255);
    a.shli(r1, r1, 3);
    a.add(r1, r11, r1);
    a.ld64(r2, r1, 0);
    a.addi(r2, r2, 1);
    a.st64(r1, 0, r2);
    a.addi(r4, r4, 8);
    a.addi(r5, r5, -1);
    a.jmp(count_loop);
    a.bind(counted);

    lib::barrierWait(a, r8, r9, r4, r5);

    // Phase B (thread 0 only): global prefix -> per-thread scatter
    // bases. base[t][d] = running; running += hist[t][d].
    Label not_leader = a.newLabel();
    a.bnez(r13, not_leader);
    a.li(r4, 0); // running
    a.li(r5, 0); // digit d
    Label d_loop = a.hereLabel();
    Label d_done = a.newLabel();
    a.li(r1, 256);
    a.bgeu(r5, r1, d_done);
    a.li(r6, 0); // thread t
    Label t_loop = a.hereLabel();
    Label t_done = a.newLabel();
    a.bgeu(r6, r9, t_done);
    // addr of thread t's block
    a.muli(r1, r6, static_cast<std::int64_t>(wlPerThreadStride));
    a.addi(r1, r1, static_cast<std::int64_t>(wlPerThread));
    a.shli(r2, r5, 3);
    a.add(r3, r1, r2); // &hist[t][d] (histOff == 0)
    a.addi(r1, r3, scatterOff);
    a.st64(r1, 0, r4); // scatter base
    a.ld64(r2, r3, 0); // hist count
    a.add(r4, r4, r2);
    a.addi(r6, r6, 1);
    a.jmp(t_loop);
    a.bind(t_done);
    a.addi(r5, r5, 1);
    a.jmp(d_loop);
    a.bind(d_done);
    a.bind(not_leader);

    lib::barrierWait(a, r8, r9, r4, r5);

    // Phase C: scatter my chunk (stable within the chunk).
    a.shli(r6, r7, 3); // digit shift again
    a.add(r4, r10, r12);
    a.li(r5, static_cast<std::int64_t>(perThread));
    Label scat_loop = a.hereLabel();
    Label scattered = a.newLabel();
    a.beqz(r5, scattered);
    a.ld64(r1, r4, 0); // value
    a.shr(r2, r1, r6);
    a.andi(r2, r2, 255);
    a.shli(r2, r2, 3);
    a.add(r2, r15, r2); // &myScatter[d]
    a.ld64(r3, r2, 0);  // slot
    a.addi(r0, r3, 1);  // slot+1 via r0 as temp
    a.st64(r2, 0, r0);
    a.shli(r3, r3, 3);
    a.add(r3, r14, r3);
    a.st64(r3, 0, r1); // out[slot] = value
    a.addi(r4, r4, 8);
    a.addi(r5, r5, -1);
    a.jmp(scat_loop);
    a.bind(scattered);

    lib::barrierWait(a, r8, r9, r4, r5);
    a.addi(r7, r7, 1);
    a.jmp(pass_loop);
    a.bind(passes_done);

    // Position-weighted checksum of my chunk of the sorted array
    // (which ended back in wlInput after two passes).
    a.lia(r10, wlInput);
    a.add(r4, r10, r12); // cursor
    a.muli(r5, r13, static_cast<std::int64_t>(perThread));
    a.addi(r5, r5, 1); // 1-based global position
    a.li(r6, static_cast<std::int64_t>(perThread));
    a.li(r14, 0); // accumulator
    Label csum = a.hereLabel();
    Label cdone = a.newLabel();
    a.beqz(r6, cdone);
    a.ld64(r1, r4, 0);
    a.mul(r1, r1, r5);
    a.add(r14, r14, r1);
    a.addi(r4, r4, 8);
    a.addi(r5, r5, 1);
    a.addi(r6, r6, -1);
    a.jmp(csum);
    a.bind(cdone);
    a.lia(r5, wlGlobals + gResult);
    a.fetchAdd(r4, r5, r14);
    lib::exitWith(a, 0);

    WorkloadBundle b{a.finish("radix"), {}, radixReference(input)};
    return b;
}

} // namespace dp::workloads
