/**
 * @file
 * Shared scaffolding for the table/figure bench binaries.
 */

#ifndef DP_BENCH_BENCH_COMMON_HH
#define DP_BENCH_BENCH_COMMON_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/table.hh"
#include "harness/experiment.hh"
#include "trace/json.hh"

namespace dp::bench
{

/** Default measurement shape shared by the overhead experiments:
 *  scale 32 gives ~25-50 epochs per run at the default epoch length,
 *  long enough that the pipeline reaches steady state. */
inline harness::MeasureOptions
defaultOptions(std::uint32_t threads)
{
    harness::MeasureOptions o;
    o.threads = threads;
    o.totalCpus = 2 * threads; // the paper's "with spare cores" shape
    o.scale = 32;
    o.epochLength = 150'000;
    return o;
}

/** Print the experiment banner every bench emits. */
inline void
banner(const std::string &id, const std::string &title,
       const std::string &provenance)
{
    std::cout << "\n=== " << id << ": " << title << " ===\n"
              << "provenance: " << provenance << "\n\n";
}

/** One machine-readable result row of a bench run. */
struct BenchResult
{
    std::string name;     ///< row label, e.g. "pfscan@2T"
    std::string workload;
    std::uint32_t workers = 0;
    double overhead = 0.0; ///< record slowdown - 1
    std::uint64_t logBytes = 0;
    std::uint64_t epochs = 0;
};

/** Flatten one harness measurement into a result row. */
inline BenchResult
toBenchResult(const harness::Measurement &m)
{
    BenchResult r;
    r.name =
        m.workload + "@" + std::to_string(m.opts.threads) + "T";
    r.workload = m.workload;
    r.workers = m.opts.threads;
    r.overhead = m.overhead;
    r.logBytes = m.replayLogBytes;
    r.epochs = m.epochs;
    return r;
}

/**
 * Write @p rows as BENCH_<bench>.json ("dp-bench-v1" schema) next to
 * the human-readable tables, so sweeps can be diffed and plotted
 * without scraping stdout. The directory defaults to the working
 * directory; DP_BENCH_JSON_DIR overrides it.
 */
inline bool
emitBenchJson(const std::string &bench,
              const std::vector<BenchResult> &rows)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str("dp-bench-v1"));
    doc.set("bench", JsonValue::str(bench));
    JsonValue arr = JsonValue::array();
    for (const BenchResult &r : rows) {
        JsonValue row = JsonValue::object();
        row.set("name", JsonValue::str(r.name));
        row.set("workload", JsonValue::str(r.workload));
        row.set("workers",
                JsonValue::number(std::uint64_t{r.workers}));
        row.set("overhead", JsonValue::number(r.overhead));
        row.set("logBytes", JsonValue::number(r.logBytes));
        row.set("epochs", JsonValue::number(r.epochs));
        arr.push(std::move(row));
    }
    doc.set("rows", std::move(arr));

    std::string dir = ".";
    if (const char *env = std::getenv("DP_BENCH_JSON_DIR");
        env && *env)
        dir = env;
    const std::string path = dir + "/BENCH_" + bench + ".json";
    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot write " << path << "\n";
        return false;
    }
    out << doc.dump() << "\n";
    std::cout << "wrote " << path << "\n";
    return !out.fail();
}

} // namespace dp::bench

#endif // DP_BENCH_BENCH_COMMON_HH
